"""Per-country, per-layer template share vectors.

A template is a list of ``(entity, share)`` pairs — providers for the
hosting/DNS layers, CA owners for the CA layer, TLD labels for the TLD
layer — whose *composition* encodes everything the paper reports about
who serves each country (anchored shares, geopolitical affinities,
insularity) and whose *shape* lands near the country's published
Centralization Score.  The :mod:`~repro.worldgen.calibration` power
solver then nails the score exactly.

The tables in this module are the quantitative reading of Sections 5–7
and Appendix B: pinned top-provider shares, insularity targets,
cross-border dependence (CIS→Russia, francophone→France, SK→CZ, AF→IR),
hosting/CA partnerships, and TLD mixes.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from ..datasets import paper_anchors
from ..datasets.countries import (
    COUNTRIES,
    FRANCOPHONE_AFRICA,
    FRENCH_ADMINISTRATIVE,
)
from ..datasets.paper_scores import PAPER_SCORES
from ..datasets.providers import AMAZON, CLOUDFLARE
from ..errors import CalibrationError
from .calibration import geometric_tail
from .config import WorldConfig
from .market import Provider, ProviderMarket

__all__ = [
    "LayerTemplate",
    "ProfileBuilder",
    "ProfileOverrides",
    "hosting_insularity_target",
    "hosting_affinities",
    "cloudflare_share_default",
]


# ---------------------------------------------------------------------------
# Insularity targets (Section 5.3.1 anchors + subregion defaults)
# ---------------------------------------------------------------------------

_INSULARITY_SPECIAL: dict[str, float] = {
    "US": 0.921,
    "IR": 0.648,
    "CZ": 0.545,
    "RU": 0.511,
    "TM": 0.04,
    "SK": 0.12,  # relies on Czechia instead of itself
    "HU": 0.40,
    "BY": 0.38,
    "JP": 0.45,
    "KR": 0.42,
    "TW": 0.28,
    "DE": 0.34,
    "FR": 0.34,
    "BR": 0.26,
    "TR": 0.25,
    "IL": 0.24,
    "IN": 0.16,
    "ZA": 0.10,
    "AU": 0.20,
    "NZ": 0.12,
    "CA": 0.12,
    "PL": 0.30,
    "UA": 0.26,
    "GB": 0.14,
    "SE": 0.16,
}

_INSULARITY_SUBREGION: dict[str, float] = {
    "Northern America": 0.20,
    "Central America": 0.03,
    "Caribbean": 0.02,
    "South America": 0.08,
    "Northern Europe": 0.15,
    "Western Europe": 0.26,
    "Eastern Europe": 0.28,
    "Southern Europe": 0.20,
    "Northern Africa": 0.03,
    "Western Africa": 0.02,
    "Middle Africa": 0.02,
    "Eastern Africa": 0.03,
    "Southern Africa": 0.05,
    "Western Asia": 0.06,
    "Central Asia": 0.04,
    "Southern Asia": 0.06,
    "South-eastern Asia": 0.08,
    "Eastern Asia": 0.25,
    "Oceania": 0.10,
}


def hosting_insularity_target(cc: str) -> float:
    """The fraction of a country's sites its own providers should serve."""
    special = _INSULARITY_SPECIAL.get(cc)
    if special is not None:
        return special
    return _INSULARITY_SUBREGION[COUNTRIES[cc].subregion]


# ---------------------------------------------------------------------------
# Cross-border hosting affinities (Section 5.3.3)
# ---------------------------------------------------------------------------

_HOSTING_AFFINITY: dict[str, tuple[tuple[str, float], ...]] = {
    # CIS reliance on Russia.
    "TM": (("RU", 0.33),),
    "TJ": (("RU", 0.23),),
    "KG": (("RU", 0.22),),
    "KZ": (("RU", 0.21),),
    "BY": (("RU", 0.18),),
    "UZ": (("RU", 0.15),),
    "AM": (("RU", 0.12),),
    "AZ": (("RU", 0.10),),
    "MD": (("RU", 0.10), ("RO", 0.04)),
    "GE": (("RU", 0.06),),
    # Post-Soviet states that moved away from Russia.
    "UA": (("RU", 0.02),),
    "LT": (("RU", 0.03),),
    "EE": (("RU", 0.05),),
    "LV": (("RU", 0.06),),
    # French administrative regions and francophone Africa.  These pin
    # the *regional-provider* part of the French dependence; OVH's
    # French-skewed share (+~0.10 in DOM regions, +~0.05 in francophone
    # Africa) tops the measured dependence up to the paper's totals
    # (RE 36%, GP 34%, MQ 35%, BF 21%, CI 18%, ML 18%).
    "RE": (("FR", 0.25),),
    "GP": (("FR", 0.23),),
    "MQ": (("FR", 0.24),),
    "BF": (("FR", 0.15),),
    "CI": (("FR", 0.12),),
    "ML": (("FR", 0.12),),
    "SN": (("FR", 0.09),),
    "TG": (("FR", 0.08),),
    "BJ": (("FR", 0.08),),
    "CM": (("FR", 0.06),),
    "MG": (("FR", 0.06),),
    "CD": (("FR", 0.05),),
    "DZ": (("FR", 0.05),),
    "TN": (("FR", 0.06),),
    "MA": (("FR", 0.05),),
    "HT": (("FR", 0.04),),
    # Slovakia on Czechia; Austria on Germany; Afghanistan on Iran.
    "SK": (("CZ", 0.257),),
    "AT": (("DE", 0.03),),
    "AF": (("IR", 0.20),),
    # Smaller linguistic spillovers.
    "LU": (("DE", 0.05), ("FR", 0.05)),
    "CH": (("DE", 0.04),),
    "BE": (("FR", 0.04), ("NL", 0.03)),
    "CY": (("GR", 0.06),),
    "PT": (("ES", 0.03),),
    "IE": (("GB", 0.05),),
    "MO": (("HK", 0.08),),
    "HK": (("SG", 0.04),),
    "MN": (("RU", 0.05),),
    "NZ": (("AU", 0.06),),
    "PY": (("BR", 0.04), ("AR", 0.04)),
    "UY": (("BR", 0.04), ("AR", 0.05)),
    "BO": (("BR", 0.03), ("AR", 0.03)),
}

# Dominant single regional providers (Section 5.2).
_DOMINANT_REGIONAL: dict[str, tuple[str, float]] = {
    "BG": ("SuperHosting.BG", 0.22),
    "LT": ("UAB Interneto vizija", 0.22),
}

# Pinned Cloudflare hosting shares (Sections 5.1, 5.4, 6.1; AZ/HK from
# the Figure 1 example).
_CF_HOSTING_PINNED: dict[str, float] = {
    "TH": 0.60,
    "ID": 0.57,
    "US": 0.29,
    "IR": 0.14,
    "BR": 0.36,
    "CZ": 0.17,
    "AZ": 0.42,
    "HK": 0.33,
}

# Pinned second-provider (Amazon) hosting shares — Figure 1's AZ/HK
# contrast: same top-5 mass, different internal distribution.
_AMAZON_HOSTING_PINNED: dict[str, float] = {
    "AZ": 0.05,
    "HK": 0.12,
}

# Pinned Cloudflare DNS shares (Section 6.1).
_CF_DNS_PINNED: dict[str, float] = {
    "ID": 0.65,
    "TH": 0.62,
    "CZ": 0.17,
}

# Foreign tail composition: where a country's anonymous long-tail
# foreign providers are headquartered (weights, renormalized after
# affinity countries are added).
_FOREIGN_TAIL_BASE: tuple[tuple[str, float], ...] = (
    ("US", 0.45),
    ("DE", 0.13),
    ("NL", 0.09),
    ("FR", 0.08),
    ("GB", 0.07),
    ("SG", 0.05),
    ("CA", 0.04),
    ("JP", 0.03),
    ("IN", 0.03),
    ("BR", 0.03),
)


def hosting_affinities(cc: str) -> tuple[tuple[str, float], ...]:
    """The pinned cross-border hosting dependences of a country
    (Section 5.3.3's case-study table)."""
    return _HOSTING_AFFINITY.get(cc, ())


def cloudflare_share_default(score: float) -> float:
    """Default Cloudflare share from the country score.

    A linear fit through the paper's anchored (S, share) pairs —
    Thailand (0.355, 0.60), the U.S. (0.136, 0.29), Czechia (0.056,
    0.17), Iran (0.041, 0.14) — reproducing the strong XL-GP/S coupling
    of Section 5.2 (rho = 0.90).
    """
    return min(max(1.44 * score + 0.089, 0.05), 0.66)


@dataclass(frozen=True)
class ProfileOverrides:
    """Adjustments applied on top of the paper-anchored profiles.

    Used by the longitudinal churn model (Section 5.4): the 2025
    snapshot shifts Cloudflare shares, insularity, and score targets
    away from their 2023 values.
    """

    score_targets: dict[tuple[str, str], float] | None = None
    cf_hosting: dict[str, float] | None = None
    cf_dns: dict[str, float] | None = None
    insularity: dict[str, float] | None = None

    def target(self, cc: str, layer: str, default: float) -> float:
        """Score target for (country, layer), with override."""
        if self.score_targets is not None:
            return self.score_targets.get((cc, layer), default)
        return default

    def cloudflare(self, cc: str, layer: str) -> float | None:
        """Overridden Cloudflare share for a country, if any."""
        table = self.cf_hosting if layer == "hosting" else self.cf_dns
        return table.get(cc) if table is not None else None

    def insularity_of(self, cc: str, default: float) -> float:
        """Insularity target for a country, with override."""
        if self.insularity is not None:
            return self.insularity.get(cc, default)
        return default


_NO_OVERRIDES = ProfileOverrides()


@dataclass(frozen=True, slots=True)
class LayerTemplate:
    """A template share vector for one (country, layer)."""

    country: str
    layer: str
    entries: tuple[tuple[str, float], ...]
    target_score: float

    def shares(self) -> np.ndarray:
        """Template shares as an array (normalized)."""
        return np.array([share for _, share in self.entries], dtype=float)

    def names(self) -> tuple[str, ...]:
        """Entity names in template order."""
        return tuple(name for name, _ in self.entries)

    def share_of(self, name: str) -> float:
        """Total template share of one entity."""
        return sum(share for n, share in self.entries if n == name)


class ProfileBuilder:
    """Builds layer templates for every country in a world config."""

    def __init__(
        self,
        market: ProviderMarket,
        config: WorldConfig,
        overrides: ProfileOverrides | None = None,
    ) -> None:
        self._market = market
        self._config = config
        self._overrides = overrides or _NO_OVERRIDES

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _rng(self, cc: str, layer: str) -> np.random.Generator:
        # zlib.crc32 is stable across processes (unlike str hash).
        return np.random.default_rng(
            (
                self._config.effective_template_seed,
                zlib.crc32(cc.encode()),
                zlib.crc32(layer.encode()),
            )
        )

    def _unit(self) -> float:
        return 1.0 / self._config.sites_per_country

    @staticmethod
    def _add(entries: dict[str, float], name: str, share: float) -> None:
        if share <= 0:
            return
        entries[name] = entries.get(name, 0.0) + share

    def _foreign_tail_countries(
        self, cc: str, rng: np.random.Generator
    ) -> tuple[list[str], np.ndarray]:
        """Weighted home countries for a country's foreign tail."""
        weights: dict[str, float] = {}
        for home, w in _FOREIGN_TAIL_BASE:
            if home != cc:
                weights[home] = w
        # Affinity countries appear in the tail too, but gently: their
        # headline dependence share is already pinned in the head.
        for home, share in _HOSTING_AFFINITY.get(cc, ()):
            weights[home] = weights.get(home, 0.0) + 0.7 * share
        homes = sorted(weights)
        w = np.array([weights[h] for h in homes])
        return homes, w / w.sum()

    def _assign_tail_identities(
        self,
        cc: str,
        tail_shares: list[float],
        local_fraction: float,
        rng: np.random.Generator,
        entries: dict[str, float],
        start_local_index: int = 0,
    ) -> None:
        """Attach provider identities to anonymous tail shares.

        Local slots become this country's XS providers; foreign slots
        draw from other countries' tail pools with small indices reused
        across countries (those providers accumulate multi-country
        usage and surface as S-GP/M-GP in classification).
        """
        homes, weights = self._foreign_tail_countries(cc, rng)
        local_idx = start_local_index
        n = len(tail_shares)
        if n == 0:
            return
        local_flags = rng.random(n) < local_fraction
        home_choices = rng.choice(len(homes), size=n, p=weights)
        # Small foreign tail entries reuse low indices across countries
        # (hosting resellers with thin multi-country presence — the
        # S-GP texture); sizable entries get effectively unique
        # identities so each stays a single-market regional provider.
        exponential = rng.exponential(120.0, size=n)
        unique = rng.integers(3000, 10_000, size=n)
        for i, share in enumerate(tail_shares):
            if local_flags[i]:
                provider = self._market.tail_provider(cc, local_idx)
                local_idx += 1
            else:
                home = homes[int(home_choices[i])]
                index = (
                    int(unique[i]) if share >= 0.012 else int(exponential[i])
                )
                provider = self._market.tail_provider(home, index)
                attempts = 0
                while provider.name in entries and attempts < 50:
                    index += 7
                    provider = self._market.tail_provider(home, index)
                    attempts += 1
                if provider.name in entries:
                    provider = self._market.tail_provider(cc, local_idx)
                    local_idx += 1
            self._add(entries, provider.name, share)

    def _finish(
        self,
        cc: str,
        layer: str,
        entries: dict[str, float],
        target: float,
    ) -> LayerTemplate:
        total = sum(entries.values())
        if total <= 0:
            raise CalibrationError(f"empty template for {cc}/{layer}")
        normalized = tuple(
            (name, share / total)
            for name, share in sorted(
                entries.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        return LayerTemplate(
            country=cc, layer=layer, entries=normalized, target_score=target
        )

    # ------------------------------------------------------------------
    # Hosting
    # ------------------------------------------------------------------

    def hosting_template(self, cc: str) -> LayerTemplate:
        """Hosting-layer template for one country (Section 5)."""
        target = self._overrides.target(
            cc, "hosting", PAPER_SCORES["hosting"][cc]
        )
        unit = self._unit()
        rng = self._rng(cc, "hosting")
        insular_target = self._overrides.insularity_of(
            cc, hosting_insularity_target(cc)
        )
        entries: dict[str, float] = {}

        hhi_cap = target + unit
        cf_cap = math.sqrt(0.94 * hhi_cap)

        if cc == "JP":
            # Japan is the one country where Amazon outranks Cloudflare.
            amazon = min(0.23, cf_cap)
            cloudflare = min(0.10, 0.9 * amazon)
        else:
            pinned = self._overrides.cloudflare(cc, "hosting")
            if pinned is None:
                pinned = _CF_HOSTING_PINNED.get(
                    cc, cloudflare_share_default(target)
                )
            cloudflare = min(pinned, cf_cap)
            amazon = _AMAZON_HOSTING_PINNED.get(cc)
            if amazon is None:
                amazon = min(
                    max(0.30 * cloudflare, 0.015), 0.10, 0.9 * cloudflare
                )
        self._add(entries, CLOUDFLARE, cloudflare)
        self._add(entries, AMAZON, amazon)

        # Other large global providers: weak correlation with S
        # (Section 5.2), suppressed in insular countries.
        lgp_total = (0.11 + 0.07 * rng.random()) * (
            1.0 - 0.75 * insular_target
        )
        lgp_weights = {
            "Google": 0.28,
            "Akamai": 0.22,
            "Microsoft": 0.18,
            "Fastly": 0.12,
            "DigitalOcean": 0.10,
            "GoDaddy Hosting": 0.10,
        }
        for name, weight in lgp_weights.items():
            self._add(entries, name, lgp_total * weight)

        # OVH and Hetzner: global with a European/francophone skew
        # (the Table 1 "L-GP (R)" profile: sizable usage, endemicity
        # ratio between the global and regional plateaus).
        ovh = 0.004
        continent = COUNTRIES[cc].continent
        if cc == "FR":
            ovh = 0.06
        elif cc in FRENCH_ADMINISTRATIVE:
            ovh = 0.10
        elif cc in FRANCOPHONE_AFRICA:
            ovh = 0.05
        elif continent == "EU":
            ovh = 0.018
        self._add(entries, "OVH", ovh)
        hetzner = paper_anchors.HOSTING["hetzner_global_share"]
        if cc == "DE":
            hetzner = 0.05
        elif cc == "AT":
            hetzner = 0.032
        elif continent == "EU":
            hetzner = 0.028
        self._add(entries, "Hetzner", hetzner)

        # Medium/small global providers.
        small_globals = self._market.small_global()
        mgp_names = ["Incapsula", "Linode", "Vultr", "Leaseweb"] + [
            p.name
            for p in small_globals[
                int(rng.integers(0, 40)) : int(rng.integers(0, 40)) + 10
            ]
        ]
        mgp_total = 0.03 + 0.015 * rng.random()
        mgp_weights = np.array([0.85**i for i in range(len(mgp_names))])
        mgp_weights /= mgp_weights.sum()
        for name, w in zip(mgp_names, mgp_weights):
            self._add(entries, name, mgp_total * float(w))
        sgp_names = ["Wix", "Squarespace", "Netlify"] + [
            p.name
            for p in small_globals[60 + (zlib.crc32(cc.encode()) % 20) :][:12]
        ]
        sgp_total = 0.02 + 0.012 * rng.random()
        sgp_weights = np.array([0.88**i for i in range(len(sgp_names))])
        sgp_weights /= sgp_weights.sum()
        for name, w in zip(sgp_names, sgp_weights):
            self._add(entries, name, sgp_total * float(w))

        # Cross-border affinity providers (split over the foreign
        # country's large regional pool).
        for foreign_cc, share in _HOSTING_AFFINITY.get(cc, ()):
            pool = self._market.local_large(foreign_cc)
            weights = np.array([0.45, 0.27, 0.17, 0.11][: len(pool)])
            weights = weights / weights.sum()
            for provider, w in zip(pool, weights):
                self._add(entries, provider.name, share * float(w))

        # Dominant single regional provider, where the paper names one.
        dominant = _DOMINANT_REGIONAL.get(cc)
        if dominant is not None:
            self._add(entries, dominant[0], dominant[1])

        # Local head: enough local-provider mass to satisfy the
        # insularity target, spread over enough providers to respect
        # the country's score budget.
        local_mass_so_far = sum(
            share
            for name, share in entries.items()
            if self._market.home_country_of(name) == cc
        )
        head_budget = hhi_cap - sum(s * s for s in entries.values())
        local_head = max(
            0.0, min(0.62 * (insular_target - local_mass_so_far), 0.55)
        )
        if local_head > 0:
            pool = self._market.local_large(cc) + self._market.local_small(cc)
            pool = [p for p in pool if p.name not in entries]
            if head_budget > 1e-6:
                n_needed = max(
                    2,
                    int(math.ceil(local_head**2 / (0.55 * head_budget))),
                )
            else:
                n_needed = len(pool)
            n_used = min(max(n_needed, 2), len(pool)) if pool else 0
            if n_used:
                ranks = np.arange(1, n_used + 1, dtype=float)
                zipf = ranks**-0.7
                zipf /= zipf.sum()
                for provider, w in zip(pool[:n_used], zipf):
                    self._add(entries, provider.name, local_head * float(w))

        # Long tail: the remaining mass, with its sum-of-squares chosen
        # so that the template's score matches the target before the
        # power solver even runs.
        head_total = sum(entries.values())
        if head_total >= 0.98:
            scale = 0.9 / head_total
            for name in list(entries):
                entries[name] *= scale
            head_total = sum(entries.values())
        tail_mass = 1.0 - head_total
        head_sq = sum(s * s for s in entries.values())
        tail_sq_budget = max(hhi_cap - head_sq, 0.0)
        tail_shares = geometric_tail(tail_mass, tail_sq_budget, unit)

        local_mass = sum(
            share
            for name, share in entries.items()
            if self._market.home_country_of(name) == cc
        )
        local_tail_fraction = 0.0
        if tail_mass > 0:
            local_tail_fraction = min(
                max((insular_target - local_mass) / tail_mass, 0.04), 1.0
            )
        self._assign_tail_identities(
            cc, tail_shares, local_tail_fraction, rng, entries
        )
        return self._finish(cc, "hosting", entries, target)

    # ------------------------------------------------------------------
    # DNS
    # ------------------------------------------------------------------

    def dns_template(self, cc: str) -> LayerTemplate:
        """DNS-layer template (Section 6): like hosting, with managed
        DNS providers and a shift toward larger regional operators."""
        target = self._overrides.target(cc, "dns", PAPER_SCORES["dns"][cc])
        unit = self._unit()
        rng = self._rng(cc, "dns")
        insular_target = self._overrides.insularity_of(
            cc, hosting_insularity_target(cc)
        )
        entries: dict[str, float] = {}

        hhi_cap = target + unit
        cf_cap = math.sqrt(0.94 * hhi_cap)
        if cc == "JP":
            amazon = min(0.22, cf_cap)
            cloudflare = min(0.11, 0.9 * amazon)
        else:
            pinned = self._overrides.cloudflare(cc, "dns")
            if pinned is None:
                pinned = _CF_DNS_PINNED.get(
                    cc, min(max(1.50 * target + 0.10, 0.05), 0.68)
                )
            cloudflare = min(pinned, cf_cap)
            amazon = min(max(0.28 * cloudflare, 0.015), 0.10, 0.9 * cloudflare)
        self._add(entries, CLOUDFLARE, cloudflare)
        self._add(entries, AMAZON, amazon)

        # Managed DNS (NSONE, UltraDNS): in the top ten of more than a
        # hundred countries (Section 6.2), so their shares must clear
        # the typical tenth-provider share.
        self._add(entries, "NSONE", 0.028 + 0.008 * rng.random())
        self._add(entries, "Neustar UltraDNS", 0.026 + 0.007 * rng.random())
        self._add(entries, "DNSimple", 0.005)
        self._add(entries, "Sucuri", 0.004)

        lgp_total = (0.10 + 0.06 * rng.random()) * (
            1.0 - 0.75 * insular_target
        )
        for name, weight in {
            "Google": 0.30,
            "Akamai": 0.22,
            "Microsoft": 0.17,
            "GoDaddy Hosting": 0.16,
            "DigitalOcean": 0.15,
        }.items():
            self._add(entries, name, lgp_total * weight)
        continent = COUNTRIES[cc].continent
        self._add(entries, "OVH", 0.035 if cc == "FR" else 0.02 if continent == "EU" else 0.005)
        self._add(entries, "Hetzner", 0.03 if cc == "DE" else 0.018 if continent == "EU" else 0.004)

        for foreign_cc, share in _HOSTING_AFFINITY.get(cc, ()):
            pool = self._market.local_large(foreign_cc)[:3]
            weights = np.array([0.45, 0.33, 0.22][: len(pool)])
            weights /= weights.sum()
            for provider, w in zip(pool, weights):
                # Cloudflare tops the DNS layer in every country but
                # Japan (Figure 14); cap affinity providers below it.
                self._add(
                    entries,
                    provider.name,
                    min(share * 0.9 * float(w), 0.9 * cloudflare),
                )

        dominant = _DOMINANT_REGIONAL.get(cc)
        if dominant is not None:
            self._add(entries, dominant[0], dominant[1] * 0.9)

        # Local head, shifted to *larger* regional operators than
        # hosting (Section 6.2): fewer providers, bigger shares.
        local_mass_so_far = sum(
            share
            for name, share in entries.items()
            if self._market.home_country_of(name) == cc
        )
        head_budget = hhi_cap - sum(s * s for s in entries.values())
        boost = 1.2 if cc != "US" else 1.0
        local_head = max(
            0.0,
            min(0.62 * boost * (insular_target - local_mass_so_far), 0.6),
        )
        if local_head > 0:
            pool = (
                self._market.local_large(cc)
                + self._market.local_dns(cc)
                + self._market.local_small(cc)
            )
            pool = [p for p in pool if p.name not in entries and p.offers_dns]
            if head_budget > 1e-6:
                n_needed = max(
                    2, int(math.ceil(local_head**2 / (0.5 * head_budget)))
                )
            else:
                n_needed = len(pool)
            n_used = min(max(n_needed, 2), len(pool)) if pool else 0
            if n_used:
                ranks = np.arange(1, n_used + 1, dtype=float)
                zipf = ranks**-0.85
                zipf /= zipf.sum()
                for provider, w in zip(pool[:n_used], zipf):
                    self._add(entries, provider.name, local_head * float(w))

        head_total = sum(entries.values())
        if head_total >= 0.98:
            scale = 0.9 / head_total
            for name in list(entries):
                entries[name] *= scale
            head_total = sum(entries.values())
        tail_mass = 1.0 - head_total
        head_sq = sum(s * s for s in entries.values())
        tail_shares = geometric_tail(
            tail_mass, max(hhi_cap - head_sq, 0.0), unit
        )
        local_mass = sum(
            share
            for name, share in entries.items()
            if self._market.home_country_of(name) == cc
        )
        local_tail_fraction = 0.0
        if tail_mass > 0:
            local_tail_fraction = min(
                max((insular_target - local_mass) / tail_mass, 0.03), 1.0
            )
        self._assign_tail_identities(
            cc, tail_shares, local_tail_fraction, rng, entries,
            start_local_index=5000,
        )
        return self._finish(cc, "dns", entries, target)

    # ------------------------------------------------------------------
    # Certificate authorities
    # ------------------------------------------------------------------

    _CA_LGP_TOTAL_SPECIAL = {"IR": 0.80, "RU": 0.997, "TW": 0.82, "JP": 0.85}

    _CA_REGIONAL_PINNED: dict[str, tuple[tuple[str, float], ...]] = {
        "PL": (("Asseco", 0.19),),
        "IR": (("Asseco", 0.19),),
        "AF": (("Asseco", 0.05),),
        "TW": (("TWCA", 0.10), ("Chunghwa Telecom", 0.07)),
        "JP": (("SECOM", 0.08), ("Cybertrust Japan", 0.06)),
        "SK": (("Disig", 0.012),),
        "HU": (("Microsec", 0.008), ("NetLock", 0.005)),
        "TR": (("e-Tugra", 0.010), ("TurkTrust", 0.008), ("KamuSM", 0.004)),
        "ES": (
            ("ACCV", 0.006),
            ("Izenpe", 0.005),
            ("Firmaprofesional", 0.004),
            ("ANF", 0.002),
            ("Camerfirma", 0.002),
        ),
        "IT": (("Actalis", 0.012),),
        "NO": (("Buypass", 0.012),),
        "CH": (("SwissSign", 0.012),),
        "FR": (("Certigna", 0.008), ("Certinomis", 0.004)),
        "FI": (("Telia", 0.008), ("Sonera", 0.003)),
        "CL": (("E-Sign", 0.005),),
        "PA": (("TrustCor", 0.008),),
        "MY": (("Pos Digicert", 0.006), ("MSC Trustgate", 0.008)),
        "CO": (("Certicamara", 0.005),),
        "CA": (("Echoworx", 0.003),),
        "LU": (("LuxTrust", 0.004),),
        "SI": (("Halcom", 0.008),),
        "TH": (("Thai Digital ID", 0.006),),
        "IN": (("Indian CCA", 0.006),),
        "US": (("SSL.com", 0.009),),
        "BR": (("Serasa", 0.006), ("Certisign", 0.008)),
    }

    #: Foreign XS CAs sprinkled into countries with no local CA so that
    #: every catalog CA appears somewhere beyond its home market.
    _CA_SPILL = (
        "SSL.com",
        "TrustCor",
        "Certisign",
        "MSC Trustgate",
        "Halcom",
    )

    def ca_template(self, cc: str) -> LayerTemplate:
        """CA-layer template (Section 7): seven global CAs dominate."""
        target = self._overrides.target(cc, "ca", PAPER_SCORES["ca"][cc])
        rng = self._rng(cc, "ca")
        entries: dict[str, float] = {}

        lgp_total = self._CA_LGP_TOTAL_SPECIAL.get(cc, 0.975)
        continent = COUNTRIES[cc].continent
        if continent == "EU":
            weights = {
                "Let's Encrypt": 0.45,
                "DigiCert": 0.17,
                "Sectigo": 0.11,
                "Amazon": 0.08,
                "Google": 0.07,
                "GlobalSign": 0.06,
                "GoDaddy": 0.06,
            }
        else:
            weights = {
                "Let's Encrypt": 0.34,
                "DigiCert": 0.23,
                "Sectigo": 0.12,
                "Amazon": 0.10,
                "Google": 0.08,
                "GoDaddy": 0.07,
                "GlobalSign": 0.06,
            }
        if cc == "RU":
            # DigiCert pulled out of Russia; LE/GlobalSign picked up.
            weights = {
                "Let's Encrypt": 0.47,
                "GlobalSign": 0.16,
                "DigiCert": 0.08,
                "Sectigo": 0.09,
                "Amazon": 0.07,
                "Google": 0.07,
                "GoDaddy": 0.06,
            }
        for name, w in weights.items():
            self._add(entries, name, lgp_total * w)

        self._add(entries, "Entrust", 0.004 + 0.003 * rng.random())
        self._add(entries, "IdenTrust", 0.003 + 0.002 * rng.random())

        for name, share in self._CA_REGIONAL_PINNED.get(cc, ()):
            self._add(entries, name, share)

        # Tiny spill so residual mass exists everywhere.  The spill
        # share stays far below each spill CA's home-market share so
        # the endemicity ratio keeps them in the regional classes.
        spill_start = int(rng.integers(0, len(self._CA_SPILL)))
        for k in range(2):
            name = self._CA_SPILL[(spill_start + k) % len(self._CA_SPILL)]
            self._add(entries, name, 0.0008)
        return self._finish(cc, "ca", entries, target)

    # ------------------------------------------------------------------
    # TLDs
    # ------------------------------------------------------------------

    _COM_PINNED = {
        "US": 0.77,
        "KG": 0.29,
        "PR": 0.70,
        "TT": 0.64,
        "JM": 0.63,
        "CA": 0.55,
    }

    _CCTLD_PINNED = {
        "CZ": 0.60,
        "HU": 0.58,
        "PL": 0.56,
        "DE": 0.44,
        "RU": 0.50,
        "BR": 0.50,
        "JP": 0.42,
        "KG": 0.12,
        "US": 0.004,
        "PR": 0.004,
    }

    #: External ccTLD usage (Appendix B): .ru in the CIS, .fr across
    #: francophone countries, .de in the German-speaking world.
    _EXTERNAL_CCTLD: dict[str, tuple[tuple[str, float], ...]] = {
        "KG": (("ru", 0.22),),
        "TJ": (("ru", 0.20),),
        "KZ": (("ru", 0.18),),
        "BY": (("ru", 0.20),),
        "UZ": (("ru", 0.15),),
        "TM": (("ru", 0.15),),
        "AM": (("ru", 0.10),),
        "AZ": (("ru", 0.10),),
        "MD": (("ru", 0.08), ("ro", 0.03)),
        "GE": (("ru", 0.06),),
        "UA": (("ru", 0.03),),
        "MN": (("ru", 0.04),),
        "AT": (("de", 0.14),),
        "LU": (("de", 0.08),),
        "CH": (("de", 0.07),),
        "SK": (("cz", 0.06),),
        "AF": (("ir", 0.06),),
        "IE": (("uk", 0.04),),
        "NZ": (("au", 0.03),),
        # Francophone .fr usage (more popular than local ccTLDs there).
        "BF": (("fr", 0.10),),
        "BJ": (("fr", 0.09),),
        "CD": (("fr", 0.08),),
        "CI": (("fr", 0.09),),
        "CM": (("fr", 0.08),),
        "DZ": (("fr", 0.08),),
        "GP": (("fr", 0.26),),
        "HT": (("fr", 0.07),),
        "MG": (("fr", 0.08),),
        "ML": (("fr", 0.09),),
        "MQ": (("fr", 0.26),),
        "RE": (("fr", 0.25),),
        "SN": (("fr", 0.08),),
        "TG": (("fr", 0.08),),
    }

    _CCTLD_SUBREGION_DEFAULT = {
        "Northern America": 0.30,
        "Central America": 0.12,
        "Caribbean": 0.05,
        "South America": 0.28,
        "Northern Europe": 0.35,
        "Western Europe": 0.36,
        "Eastern Europe": 0.42,
        "Southern Europe": 0.30,
        "Northern Africa": 0.10,
        "Western Africa": 0.06,
        "Middle Africa": 0.06,
        "Eastern Africa": 0.10,
        "Southern Africa": 0.16,
        "Western Asia": 0.12,
        "Central Asia": 0.16,
        "Southern Asia": 0.10,
        "South-eastern Asia": 0.16,
        "Eastern Asia": 0.32,
        "Oceania": 0.30,
    }

    def tld_template(self, cc: str) -> LayerTemplate:
        """TLD-layer template (Appendix B)."""
        from ..net.psl import CCTLD_OF_COUNTRY

        target = self._overrides.target(cc, "tld", PAPER_SCORES["tld"][cc])
        rng = self._rng(cc, "tld")
        unit = self._unit()
        entries: dict[str, float] = {}
        subregion = COUNTRIES[cc].subregion

        hhi_cap = target + unit
        com_cap = math.sqrt(0.97 * hhi_cap)
        external = dict(self._EXTERNAL_CCTLD.get(cc, ()))
        own = CCTLD_OF_COUNTRY[cc]
        cctld = self._CCTLD_PINNED.get(
            cc, self._CCTLD_SUBREGION_DEFAULT[subregion]
        )
        # Where an external ccTLD dominates (French DOM regions), the
        # local ccTLD stays small — unless the paper pins it.
        if cc not in self._CCTLD_PINNED and sum(external.values()) > 0.2:
            cctld = min(cctld, 0.06)
        com = self._COM_PINNED.get(cc)
        if com is None:
            # Whatever centralization the ccTLD does not explain is
            # mostly .com's.
            residual = max(hhi_cap - cctld**2 - sum(v * v for v in external.values()), 0.02)
            com = min(math.sqrt(residual * 0.82), 0.70)
        com = min(com, com_cap)
        self._add(entries, "com", com)
        self._add(entries, own, cctld)
        for tld, share in external.items():
            self._add(entries, tld, share)

        # Global TLD block.
        for tld, share in (
            ("net", 0.042),
            ("org", 0.050),
            ("io", 0.018),
            ("co", 0.012),
            ("info", 0.010),
            ("xyz", 0.007),
            ("online", 0.005),
            ("site", 0.004),
            ("app", 0.004),
            ("dev", 0.003),
            ("biz", 0.003),
            ("edu", 0.004),
            ("gov", 0.003),
        ):
            self._add(entries, tld, share * (0.8 + 0.4 * rng.random()))

        # Tail: other countries' ccTLDs with tiny shares.
        head_total = sum(entries.values())
        if head_total >= 0.99:
            scale = 0.95 / head_total
            for name in list(entries):
                entries[name] *= scale
            head_total = sum(entries.values())
        tail_mass = 1.0 - head_total
        head_sq = sum(s * s for s in entries.values())
        tail_sq = max(hhi_cap - head_sq, 0.0)
        tail_shares = geometric_tail(tail_mass, tail_sq, unit)
        other_ccs = [
            CCTLD_OF_COUNTRY[c]
            for c in sorted(COUNTRIES)
            if CCTLD_OF_COUNTRY[c] not in entries
        ]
        extra = ["cn", "eu", "su", "me", "tv", "cc"]
        pool = [t for t in other_ccs + extra if t not in entries]
        order = rng.permutation(len(pool))
        for i, share in enumerate(tail_shares):
            if i < len(pool):
                self._add(entries, pool[int(order[i])], share)
            else:
                # More tail entries than TLDs exist: fold into 'org'.
                self._add(entries, "org", share)
        return self._finish(cc, "tld", entries, target)
