"""CrUX-like toplists: popular-website lists per country.

Mirrors the structure of the Chrome User Experience Report data the
paper builds on: every country gets a ranked list of websites grouped
into rank-magnitude buckets; lists overlap through a globally shared
pool of popular sites (google.com-style) and diverge through
country-local sites.  Each site carries an origin country and a content
language (used by the Afghanistan/Iran Persian-language case study).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.countries import COUNTRIES
from ..errors import InvalidDistributionError

__all__ = [
    "Site",
    "Toplist",
    "rank_bucket",
    "DomainFactory",
    "LANGUAGE_OF_COUNTRY",
]

#: Rough primary content language per country (ISO 639-1).
_LANGUAGE_SPECIAL: dict[str, str] = {
    "AF": "fa", "IR": "fa", "TJ": "fa",
    "BR": "pt", "PT": "pt", "AO": "pt", "MZ": "pt",
    "RU": "ru", "BY": "ru", "KZ": "ru", "KG": "ru", "TM": "ru", "UZ": "ru",
    "UA": "uk", "DE": "de", "AT": "de", "CH": "de", "LU": "de",
    "FR": "fr", "RE": "fr", "GP": "fr", "MQ": "fr", "HT": "fr",
    "BF": "fr", "CI": "fr", "ML": "fr", "SN": "fr", "TG": "fr",
    "BJ": "fr", "CM": "fr", "MG": "fr", "CD": "fr", "GA": "fr",
    "CN": "zh", "TW": "zh", "HK": "zh", "MO": "zh", "SG": "en",
    "JP": "ja", "KR": "ko", "TH": "th", "VN": "vi", "ID": "id",
    "MY": "ms", "BN": "ms", "PH": "en", "IN": "hi", "PK": "ur",
    "BD": "bn", "LK": "si", "NP": "ne", "MM": "my", "KH": "km",
    "LA": "lo", "MN": "mn", "TR": "tr", "GR": "el", "CY": "el",
    "IL": "he", "SA": "ar", "AE": "ar", "EG": "ar", "IQ": "ar",
    "SY": "ar", "JO": "ar", "LB": "ar", "KW": "ar", "QA": "ar",
    "BH": "ar", "OM": "ar", "YE": "ar", "PS": "ar", "LY": "ar",
    "DZ": "ar", "MA": "ar", "TN": "ar", "SD": "ar", "ES": "es",
    "MX": "es", "AR": "es", "CO": "es", "CL": "es", "PE": "es",
    "VE": "es", "EC": "es", "BO": "es", "PY": "es", "UY": "es",
    "GT": "es", "HN": "es", "NI": "es", "CR": "es", "PA": "es",
    "SV": "es", "DO": "es", "CU": "es", "PR": "es", "IT": "it",
    "PL": "pl", "CZ": "cs", "SK": "sk", "HU": "hu", "RO": "ro",
    "MD": "ro", "BG": "bg", "RS": "sr", "HR": "hr", "BA": "bs",
    "SI": "sl", "MK": "mk", "ME": "sr", "AL": "sq", "NL": "nl",
    "BE": "nl", "SE": "sv", "NO": "no", "DK": "da", "FI": "fi",
    "IS": "is", "EE": "et", "LV": "lv", "LT": "lt", "GE": "ka",
    "AM": "hy", "AZ": "az", "ET": "am", "SO": "so", "KE": "sw",
    "TZ": "sw",
}

LANGUAGE_OF_COUNTRY: dict[str, str] = {
    cc: _LANGUAGE_SPECIAL.get(cc, "en") for cc in COUNTRIES
}


@dataclass(frozen=True, slots=True)
class Site:
    """One website in the synthetic web."""

    domain: str
    origin_country: str | None
    language: str
    is_global: bool

    def __post_init__(self) -> None:
        if not self.domain or "." not in self.domain:
            raise InvalidDistributionError(
                f"invalid site domain {self.domain!r}"
            )


#: CrUX groups ranks into magnitude buckets (top 1K, 5K, 10K, ...).
_BUCKETS = (1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000)


def rank_bucket(rank: int) -> int:
    """CrUX-style rank-magnitude bucket for a 1-indexed rank."""
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    for bucket in _BUCKETS:
        if rank <= bucket:
            return bucket
    return _BUCKETS[-1]


@dataclass(frozen=True, slots=True)
class Toplist:
    """The ranked list of popular websites for one country."""

    country: str
    domains: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.domains)) != len(self.domains):
            raise InvalidDistributionError(
                f"toplist for {self.country} contains duplicate domains"
            )

    def __len__(self) -> int:
        return len(self.domains)

    def rank_of(self, domain: str) -> int:
        """1-indexed rank of a domain (ValueError if absent)."""
        return self.domains.index(domain) + 1

    def bucket_of(self, domain: str) -> int:
        """CrUX rank bucket of a domain in this toplist."""
        return rank_bucket(self.rank_of(domain))

    def top(self, n: int) -> tuple[str, ...]:
        """The first n domains of the toplist."""
        return self.domains[:n]


_WORDS_A = (
    "news", "shop", "play", "tech", "media", "cloud", "daily", "smart",
    "home", "star", "blue", "open", "fast", "prime", "metro", "vista",
    "alpha", "terra", "luna", "nova",
)
_WORDS_B = (
    "portal", "market", "online", "hub", "press", "world", "zone",
    "space", "base", "point", "link", "spot", "center", "express",
    "direct", "live", "plus", "go", "now", "box",
)


class DomainFactory:
    """Deterministic, collision-free domain name generation."""

    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)
        self._used: set[str] = set()
        self._counter = 0

    def reserve(self, domains: set[str] | frozenset[str]) -> None:
        """Mark domains as taken (e.g. carried over from an old world)."""
        self._used.update(domains)

    def make(self, suffix: str, hint: str = "") -> str:
        """Mint a fresh registrable domain under ``suffix``.

        ``hint`` (e.g. the origin country) flavors the label without
        affecting uniqueness.
        """
        suffix = suffix.lower().strip(".")
        if not suffix:
            raise InvalidDistributionError("empty TLD suffix")
        for _ in range(20):
            a = _WORDS_A[int(self._rng.integers(0, len(_WORDS_A)))]
            b = _WORDS_B[int(self._rng.integers(0, len(_WORDS_B)))]
            self._counter += 1
            tag = np.base_repr(self._counter, 36).lower()
            label = f"{a}{b}-{hint.lower()}{tag}" if hint else f"{a}{b}-{tag}"
            domain = f"{label}.{suffix}"
            if domain not in self._used:
                self._used.add(domain)
                return domain
        raise InvalidDistributionError(
            f"could not mint a unique domain under {suffix!r}"
        )

    def __len__(self) -> int:
        return len(self._used)
