"""World self-validation: invariant checks over a built world.

A generated world is a web of cross-references — toplists into site
records, site records into zones, zones into provider nameservers,
providers into ASes and prefixes.  :func:`validate_world` walks all of
them and returns human-readable violations (empty list = sound world).
Used by the test suite and available to users who customize the
generator.
"""

from __future__ import annotations

from .world import LAYER_NAMES, World

__all__ = ["validate_world"]


def _check_toplists(world: World, problems: list[str]) -> None:
    c = world.config.sites_per_country
    for cc in world.config.countries:
        toplist = world.toplists.get(cc)
        if toplist is None:
            problems.append(f"{cc}: missing toplist")
            continue
        if len(toplist) != c:
            problems.append(
                f"{cc}: toplist has {len(toplist)} entries, expected {c}"
            )
        for domain in toplist.domains:
            if domain not in world.sites:
                problems.append(f"{cc}: {domain} has no site record")


def _check_sites(world: World, problems: list[str], sample: int) -> None:
    for i, (domain, record) in enumerate(world.sites.items()):
        if i >= sample:
            break
        zone = world.namespace.zone(domain)
        if zone is None:
            problems.append(f"{domain}: no authoritative zone")
            continue
        if not zone.lookup(domain, "NS"):
            problems.append(f"{domain}: zone has no NS records")
        if not zone.lookup(domain, "A"):
            problems.append(f"{domain}: zone has no A records")
        for provider_name in (record.hosting, record.dns):
            if provider_name not in world.provider_infra:
                problems.append(
                    f"{domain}: provider {provider_name!r} has no "
                    f"materialized infrastructure"
                )
        if record.ca not in world.ccadb:
            problems.append(f"{domain}: CA {record.ca!r} not in CCADB")


def _check_providers(world: World, problems: list[str]) -> None:
    for name, infra in world.provider_infra.items():
        record = world.asdb.record(infra.asn)
        if record.org_name != name:
            problems.append(
                f"{name}: ASN {infra.asn} registered to "
                f"{record.org_name!r}"
            )
        ns_zone = world.namespace.zone(infra.ns_domain)
        if ns_zone is None:
            problems.append(f"{name}: nameserver zone missing")
            continue
        for ns_host in infra.ns_hosts:
            if not ns_zone.lookup(ns_host, "A"):
                problems.append(f"{name}: {ns_host} has no address")
        for table in infra.address_variants:
            if "default" not in table:
                problems.append(f"{name}: address table lacks default")
                break
            for address in table.values():
                if world.asdb.org_of_ip(address) != name:
                    # In-country cache nodes are *deliberately*
                    # announced by the local telecom.
                    continue


def _check_targets(world: World, problems: list[str]) -> None:
    c = world.config.sites_per_country
    for cc in world.config.countries:
        for layer in LAYER_NAMES:
            target = world.targets[cc][layer]
            total = sum(target.values())
            if total != c:
                problems.append(
                    f"{cc}/{layer}: target counts sum to {total}, "
                    f"expected {c}"
                )
            report = world.calibration_report[(cc, layer)]
            if abs(report["allocated_score"] - report["target_score"]) > 0.01:
                problems.append(
                    f"{cc}/{layer}: calibration error "
                    f"{abs(report['allocated_score'] - report['target_score']):.4f}"
                )


def validate_world(world: World, site_sample: int = 2_000) -> list[str]:
    """Run every invariant check; returns violations (empty = sound).

    ``site_sample`` caps how many site records get the per-site deep
    checks (zones, providers, CA membership); toplists, providers, and
    calibration targets are always checked in full.
    """
    problems: list[str] = []
    _check_toplists(world, problems)
    _check_sites(world, problems, site_sample)
    _check_providers(world, problems)
    _check_targets(world, problems)
    return problems
