"""Synthetic web generator calibrated against the paper's published data.

The real study measures the live Internet; offline, this subpackage
synthesizes a 150-country web whose per-country concentration at each
infrastructure layer is calibrated to the paper's published score
tables, whose named anchors (Cloudflare shares, CIS→Russia dependence,
CA partnerships, ccTLD mixes) hold by construction, and which is then
*re-measured* through the full simulated pipeline.
"""

from .churn import ChurnConfig, derive_overrides, evolve
from .slices import project_country, world_slice_digest
from .stats import WorldSummary, summarize
from .validate import validate_world
from .calibration import (
    CalibrationOutcome,
    calibrate_shares,
    geometric_tail,
    power_transform,
    score_of_shares,
    solve_theta,
)
from .config import BENCH_SCALE, PAPER_SCALE, SMALL_SCALE, WorldConfig
from .market import Provider, ProviderMarket
from .profiles import (
    LayerTemplate,
    ProfileBuilder,
    cloudflare_share_default,
    hosting_insularity_target,
)
from .toplist import (
    LANGUAGE_OF_COUNTRY,
    DomainFactory,
    Site,
    Toplist,
    rank_bucket,
)
from .world import (
    LAYER_NAMES,
    EvolutionPlan,
    ProviderInfra,
    SiteRecord,
    World,
)

__all__ = [
    "ChurnConfig",
    "evolve",
    "derive_overrides",
    "EvolutionPlan",
    "world_slice_digest",
    "project_country",
    "WorldSummary",
    "summarize",
    "validate_world",
    "WorldConfig",
    "SMALL_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "World",
    "SiteRecord",
    "ProviderInfra",
    "LAYER_NAMES",
    "Provider",
    "ProviderMarket",
    "ProfileBuilder",
    "LayerTemplate",
    "hosting_insularity_target",
    "cloudflare_share_default",
    "calibrate_shares",
    "solve_theta",
    "power_transform",
    "score_of_shares",
    "geometric_tail",
    "CalibrationOutcome",
    "Site",
    "Toplist",
    "DomainFactory",
    "rank_bucket",
    "LANGUAGE_OF_COUNTRY",
]
