"""Residual count reconciliation.

When a country's toplist is assembled, some sites arrive with their
assignments fixed (globally shared sites, sites kept across a
longitudinal snapshot).  The remaining *local slots* must be filled so
that the final per-entity counts land on the calibrated target — both
in composition (anchored head shares) and in Centralization Score.

:func:`residual_counts` computes the plain reconciliation — target
minus used, trimmed/padded to the slot budget with the smallest-target
entities sacrificed first so the anchored head stays exact.
:func:`residual_counts_calibrated` adds a score-repair pass: when fixed
sites displace enough mid-mass target entities that the plain residual
undershoots the target score (acute for the TLD layer, whose
distributions have few entities), the target is re-concentrated with
the same power-transform family used for template calibration.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping

import numpy as np

from ..core.reference import allocate_counts
from .calibration import power_transform

__all__ = [
    "residual_counts",
    "residual_counts_calibrated",
    "score_of_counts",
]


def score_of_counts(
    used: Mapping[str, int], residual: Mapping[str, int]
) -> float:
    """Centralization Score of the union of fixed and residual counts."""
    merged = Counter(used)
    merged.update(residual)
    total = 0
    sum_sq = 0
    for count in merged.values():
        total += count
        sum_sq += count * count
    return sum_sq / (total * total) - 1.0 / total


def residual_counts(
    target: Mapping[str, int],
    used: Mapping[str, int],
    slots: int,
) -> dict[str, int]:
    """Counts for locally created sites after fixed sites are debited.

    Invariants (property-tested): every count is positive, the total is
    exactly ``slots`` (when ``slots > 0``), and no entity exceeds its
    outstanding target need.
    """
    residual = {
        name: max(count - used.get(name, 0), 0)
        for name, count in target.items()
    }
    residual = {n: c for n, c in residual.items() if c > 0}
    total = sum(residual.values())
    if total == 0:
        # Degenerate: everything covered by fixed sites; spread slots
        # across the target proportionally.
        names = sorted(target)
        counts = allocate_counts(
            np.array([target[n] for n in names], dtype=float), slots
        )
        return {n: int(c) for n, c in zip(names, counts) if c > 0}
    if total == slots:
        return residual
    if total > slots:
        # Fixed sites brought entities outside the target, so the
        # residual overshoots the local slots.  Trim entries with the
        # *smallest target* first: the head (which carries both the
        # score and the anchored shares — Cloudflare above all) is cut
        # last, and only after everything smaller is exhausted.
        excess = total - slots
        for name in sorted(
            residual, key=lambda n: (target.get(n, 0), n)
        ):
            take = min(residual[name], excess)
            residual[name] -= take
            excess -= take
            if excess == 0:
                break
        return {n: c for n, c in residual.items() if c > 0}
    # total < slots (rare rounding case): pad the smallest targets.
    deficit = slots - total
    for name in sorted(residual, key=lambda n: (target.get(n, 0), n)):
        residual[name] += 1
        deficit -= 1
        if deficit == 0:
            break
    if deficit > 0:
        first = sorted(residual)[0]
        residual[first] += deficit
    return residual


def residual_counts_calibrated(
    target: Mapping[str, int],
    used: Mapping[str, int],
    slots: int,
    target_score: float,
    tolerance: float = 0.0035,
) -> dict[str, int]:
    """Residual counts whose *final* score hits the target.

    Overshoot from trimming singletons is bounded by ~excess/C², always
    inside the tolerance; only undershoot (fixed sites displacing
    mid-mass target entities) needs repair — and repair always means
    concentrating, so the exponent stays ≥ 1 and anchored head shares
    never shrink.
    """
    naive = residual_counts(target, used, slots)
    if slots <= 0:
        return naive
    achieved = score_of_counts(used, naive)
    if achieved >= target_score - tolerance:
        return naive

    c = sum(target.values())
    names = sorted(target)
    shares = np.array([target[n] for n in names], dtype=float)
    shares = shares / shares.sum()
    if np.allclose(shares, shares[0]):
        return naive

    def residual_for(theta: float) -> dict[str, int]:
        transformed = power_transform(shares, theta)
        counts = allocate_counts(transformed, c)
        scaled = {
            names[i]: int(n) for i, n in enumerate(counts) if n > 0
        }
        return residual_counts(scaled, used, slots)

    lo, hi = 1.0, 6.0
    for _ in range(36):
        mid = 0.5 * (lo + hi)
        if score_of_counts(used, residual_for(mid)) < target_score:
            lo = mid
        else:
            hi = mid
    best = residual_for(0.5 * (lo + hi))
    if abs(score_of_counts(used, best) - target_score) < abs(
        achieved - target_score
    ):
        return best
    return naive
