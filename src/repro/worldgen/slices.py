"""Per-country world-slice digests for incremental re-measurement.

A campaign shard (one country's measurements) is a pure function of
``(pipeline version, campaign knobs, country, what the pipeline can
observe of the world from its vantage)`` — the country-unit purity
that makes sharded execution exact.  :func:`world_slice_digest`
fingerprints that last input: it projects, for every site of the
country's toplist in rank order, exactly the observables the
measurement pipeline can read — the redirect-resolved serving host,
the vantage-projected A records with their TTLs, the authoritative NS
set, each nameserver's own resolution and enrichment labels, the
serving address's AS-organization / geolocation / anycast labels, and
the TLS issuer — and hashes the projection canonically.

Two worlds that agree on a country's digest are indistinguishable to
the pipeline for that country and vantage, so a result stored under
the digest can be reused verbatim (``repro measure --since``).  The
converse is deliberately conservative: any observable change, however
inconsequential, changes the digest and forces a re-measure — a cache
miss costs time, a false hit would cost correctness.
"""

from __future__ import annotations

import hashlib
import json

from ..errors import ReproError
from .world import World

__all__ = ["world_slice_digest", "project_country"]

#: Bumped when the projection itself changes shape.
SLICE_SCHEMA = "repro-slice-v1"

#: CNAME-chain depth matching the resolver's default.
_MAX_CNAME_DEPTH = 8


def _project_address(world: World, address: int) -> list:
    """Every enrichment label the pipeline attaches to an address."""
    return [
        world.asdb.org_of_ip(address),
        world.asdb.country_of_ip(address),
        world.geo.country_of(address),
        world.geo.continent_of(address),
        1 if world.anycast.is_anycast(address) else 0,
    ]


def _project_name(
    world: World,
    name: str,
    continent: str | None,
    country: str | None,
) -> dict:
    """Project one hostname's resolution as the resolver would see it."""
    current = name.lower().rstrip(".")
    chain: list = []
    for _ in range(_MAX_CNAME_DEPTH):
        zone = world.namespace.zone_for(current)
        if zone is None:
            return {"error": "nxdomain", "chain": chain}
        if zone.broken:
            return {"error": "servfail", "chain": chain}
        a_records = zone.lookup(current, "A")
        if a_records:
            addresses = [
                [r.resolve_address(continent, country), r.ttl]
                for r in a_records
            ]
            ns = [
                [str(r.value), r.ttl]
                for r in zone.lookup(zone.origin, "NS")
            ]
            return {
                "chain": chain,
                "addresses": addresses,
                "ns": ns,
                "enrich": _project_address(world, addresses[0][0]),
            }
        cnames = zone.lookup(current, "CNAME")
        if cnames:
            target = str(cnames[0].value)
            chain.append([target, cnames[0].ttl])
            if any(target == hop for hop, _ in chain[:-1]):
                return {"error": "cname-loop", "chain": chain}
            current = target
            continue
        if zone.has_name(current):
            return {"error": "nodata", "chain": chain}
        return {"error": "nxdomain", "chain": chain}
    return {"error": "cname-depth", "chain": chain}


def project_country(
    world: World,
    country: str,
    vantage_continent: str | None,
    vantage_country: str | None = None,
) -> dict:
    """The full vantage-projected observable state of one country.

    The projection is JSON-ready and deterministic; its canonical
    digest is :func:`world_slice_digest`.
    """
    toplist = world.toplists.get(country)
    if toplist is None:
        raise ReproError(
            f"world has no toplist for {country!r}; cannot project"
        )
    nameservers: dict[str, dict] = {}
    sites: list[dict] = []
    for domain in toplist.domains:
        record = world.sites[domain]
        entry: dict = {"domain": domain}
        try:
            serving_host = world.http.final_host(domain)
        except ReproError as exc:
            entry["http_error"] = type(exc).__name__
            sites.append(entry)
            continue
        entry["serving_host"] = serving_host
        resolution = _project_name(
            world, serving_host, vantage_continent, vantage_country
        )
        entry["resolution"] = resolution
        for ns_host, _ttl in resolution.get("ns", ()):
            if ns_host not in nameservers:
                nameservers[ns_host] = _project_name(
                    world, ns_host, vantage_continent, vantage_country
                )
        issuer = world._site_issuer.get(domain)
        entry["tls"] = [
            record.hosting,
            record.secondary_cdn,
            issuer[0] if issuer else None,
            issuer[1] if issuer else None,
        ]
        entry["language"] = record.language
        sites.append(entry)
    return {
        "_schema": SLICE_SCHEMA,
        "country": country,
        "vantage": [vantage_continent, vantage_country],
        "dns_ttl": world.config.dns_ttl,
        "sites": sites,
        "nameservers": {
            name: nameservers[name] for name in sorted(nameservers)
        },
    }


def world_slice_digest(
    world: World,
    country: str,
    vantage_continent: str | None,
    vantage_country: str | None = None,
) -> str:
    """Canonical sha256 of one country's vantage-projected slice."""
    projection = project_country(
        world, country, vantage_continent, vantage_country
    )
    text = json.dumps(
        projection, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
