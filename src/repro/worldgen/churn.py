"""Longitudinal churn: evolving the May-2023 world into May-2025.

Section 5.4 re-measures the same vantage two years later and reports:

* hosting scores highly correlated with 2023 (rho = 0.98);
* Cloudflare usage up on average +3.8 points, up to +11.3 (Turkmenistan),
  *down* in Russia, Belarus, Uzbekistan, Myanmar;
* Brazil's score jumping 0.1446 → 0.2354 on Cloudflare adoption;
* Russia's score dropping 0.0554 → 0.0499 with increased local hosting;
* toplist churn with Jaccard ≈ 0.37 on average (Russia 0.4).

:func:`evolve` reproduces this: it keeps a fraction of each country's
local sites (providers intact), re-draws the shared-pool selection,
shifts each country's Cloudflare share, derives the new score targets
from those shifts, and rebuilds the world around the carryover.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..datasets.paper_scores import PAPER_SCORES
from ..datasets.providers import CLOUDFLARE
from .profiles import ProfileOverrides
from .world import EvolutionPlan, World

__all__ = ["ChurnConfig", "evolve", "derive_overrides"]


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the 2023→2025 evolution."""

    #: Fraction of each country's local sites that survive.  Tuned so
    #: that the resulting toplist Jaccard lands near the paper's 0.37
    #: average given the shared-pool re-draw.
    keep_fraction: float = 0.58
    #: Average Cloudflare gain in share points (Section 5.4: +3.8 pts).
    cf_delta_default: float = 0.038
    #: Country-specific Cloudflare share deltas.
    cf_delta_special: dict[str, float] = field(
        default_factory=lambda: {
            "TM": 0.113,
            "BR": 0.100,
            "RU": -0.020,
            "BY": -0.010,
            "UZ": -0.010,
            "MM": -0.005,
        }
    )
    #: Published 2025 scores where the paper names them.
    score_special: dict[str, float] = field(
        default_factory=lambda: {"BR": 0.2354, "RU": 0.0499}
    )
    #: Insularity shifts (Russia: 50% → 56% local hosting).
    insularity_special: dict[str, float] = field(
        default_factory=lambda: {"RU": 0.56}
    )
    new_snapshot: str = "2025-05"
    seed_shift: int = 0x2025
    #: When set, only these countries churn (toplist re-draws, local
    #: site turnover, Cloudflare/score drift); every other country's
    #: toplist and site records carry into the new snapshot
    #: byte-identically.  ``None`` (the default) churns everything —
    #: the paper's full longitudinal study.  Restricting churn is what
    #: makes incremental re-measurement (``repro measure --since``)
    #: able to reuse the unchurned countries' stored shards.
    churn_countries: tuple[str, ...] | None = None


def derive_overrides(
    old_world: World, churn: ChurnConfig
) -> ProfileOverrides:
    """New score targets and Cloudflare pins from the old snapshot.

    The 2025 hosting score target moves with the Cloudflare share:
    ``S_new ≈ S_old + (cf_new^2 - cf_old^2)`` — the XL-GP term dominates
    score changes (Section 5.2's rho=0.90 coupling) — except where the
    paper publishes the 2025 score directly.  When the churn config
    restricts churn to a country subset, only those countries' targets
    drift; everyone else keeps the old snapshot's calibration (their
    toplists carry byte-identically anyway).
    """
    c = old_world.config.sites_per_country
    churned = (
        set(churn.churn_countries)
        if churn.churn_countries is not None
        else set(old_world.config.countries)
    )
    score_targets: dict[tuple[str, str], float] = {}
    cf_hosting: dict[str, float] = {}
    for cc in old_world.config.countries:
        if cc == "JP" or cc not in churned:
            # Japan's Amazon-led market is not modeled through the
            # Cloudflare-delta mechanism; its snapshot stays put.
            # Unchurned countries keep their old calibration entirely.
            continue
        old_counts = old_world.targets[cc]["hosting"]
        cf_old = old_counts.get(CLOUDFLARE, 0) / c
        delta = churn.cf_delta_special.get(cc, churn.cf_delta_default)
        cf_new = float(np.clip(cf_old + delta, 0.02, 0.88))
        cf_hosting[cc] = cf_new
        s_old = PAPER_SCORES["hosting"][cc]
        s_new = churn.score_special.get(
            cc, s_old + cf_new**2 - cf_old**2
        )
        score_targets[(cc, "hosting")] = float(np.clip(s_new, 0.001, 0.95))
    return ProfileOverrides(
        score_targets=score_targets,
        cf_hosting=cf_hosting,
        insularity={
            cc: value
            for cc, value in churn.insularity_special.items()
            if cc in churned
        },
    )


def evolve(old_world: World, churn: ChurnConfig | None = None) -> World:
    """Build the follow-up snapshot of an existing world."""
    churn = churn or ChurnConfig()
    if not 0.0 <= churn.keep_fraction <= 1.0:
        raise ValueError(
            f"keep_fraction must be in [0, 1], got {churn.keep_fraction}"
        )
    if churn.churn_countries is not None:
        unknown = [
            cc
            for cc in churn.churn_countries
            if cc not in old_world.config.countries
        ]
        if unknown:
            raise ValueError(
                f"churn_countries not in the old world: {unknown}"
            )
    churned = (
        set(churn.churn_countries)
        if churn.churn_countries is not None
        else set(old_world.config.countries)
    )
    overrides = derive_overrides(old_world, churn)

    pool_records = {
        domain: old_world.sites[domain]
        for domain in old_world.global_pool_domains
    }
    kept_local: dict[str, tuple] = {}
    kept_toplists: dict[str, tuple[str, ...]] = {}
    for cc in old_world.config.countries:
        local = [
            old_world.sites[d]
            for d in old_world.toplists[cc].domains
            if not old_world.sites[d].is_global
        ]
        if cc not in churned:
            # Carried byte-identically: all local records (in rank
            # order) plus the full toplist, no randomness consumed.
            kept_local[cc] = tuple(local)
            kept_toplists[cc] = tuple(old_world.toplists[cc].domains)
            continue
        rng = np.random.default_rng(
            (old_world.config.seed, churn.seed_shift, hashable_cc(cc))
        )
        n_keep = int(churn.keep_fraction * len(local))
        if n_keep:
            picks = rng.choice(len(local), size=n_keep, replace=False)
            kept_local[cc] = tuple(local[int(i)] for i in np.sort(picks))
        else:
            kept_local[cc] = ()

    plan = EvolutionPlan(
        overrides=overrides,
        pool_records=pool_records,
        pool_order=tuple(old_world.global_pool_domains),
        kept_local=kept_local,
        kept_toplists=kept_toplists,
    )
    new_config = replace(
        old_world.config,
        snapshot=churn.new_snapshot,
        seed=old_world.config.seed + churn.seed_shift,
        # Keep the template heuristics' jitter identical across
        # snapshots so that only the modeled drift moves provider
        # shares (the new seed still re-draws toplist membership).
        template_seed=old_world.config.effective_template_seed,
    )
    return World(new_config, plan=plan)


def hashable_cc(cc: str) -> int:
    """Stable per-country integer (str hash is process-randomized)."""
    import zlib

    return zlib.crc32(cc.encode())
