"""World generator configuration.

The defaults describe the paper-scale study (150 countries x 10K
websites).  Tests and benchmarks shrink ``sites_per_country`` (the
Centralization Score's ``C``) and/or the country set; all calibration
adapts to the configured scale, so the *shape* of every result is
preserved at any size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..datasets.countries import COUNTRY_CODES
from ..errors import InvalidDistributionError, UnknownCountryError

__all__ = ["WorldConfig", "SMALL_SCALE", "BENCH_SCALE", "PAPER_SCALE"]


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Parameters of the synthetic web.

    Attributes
    ----------
    seed:
        Master RNG seed; the entire world is a deterministic function
        of the configuration.
    sites_per_country:
        Toplist length per country (the paper's ``C`` is 10,000).
    countries:
        ISO codes to include (default: all 150).
    shared_site_base_fraction:
        Base fraction of each toplist drawn from the globally shared
        site pool; the effective fraction shrinks with the country's
        insularity target (insular webs share fewer sites).
    global_pool_factor:
        Size of the global shared pool relative to ``sites_per_country``.
    multi_cdn_fraction:
        Fraction of globally shared sites served by a different CDN
        depending on the client continent (drives the vantage-point
        correlation below 1.0, Section 3.4).
    geo_error_rate:
        Country-level mislabel rate of the geolocation database (the
        paper cites 89.4% NetAcuity accuracy, i.e. ~0.106 error).
    dns_ttl / measurement_interval:
        TTLs for the simulated zones and the logical time between
        consecutive site measurements (exercises resolver caching).
    snapshot:
        Label of the measurement epoch ("2023-05" or the longitudinal
        follow-up "2025-05").
    """

    seed: int = 20230501
    #: Seed for the per-country template heuristics; defaults to
    #: ``seed``.  The longitudinal churn model pins this to the old
    #: snapshot's value so that only the *modeled* drift (Cloudflare
    #: deltas, score targets) changes between snapshots, not the
    #: template jitter.
    template_seed: int | None = None
    sites_per_country: int = 10_000
    countries: tuple[str, ...] = COUNTRY_CODES
    shared_site_base_fraction: float = 0.30
    global_pool_factor: float = 2.0
    multi_cdn_fraction: float = 0.035
    geo_error_rate: float = 0.0
    dns_ttl: int = 300
    snapshot: str = "2023-05"

    def __post_init__(self) -> None:
        if self.sites_per_country < 50:
            raise InvalidDistributionError(
                "sites_per_country must be at least 50 for calibration "
                f"to be meaningful, got {self.sites_per_country}"
            )
        if not self.countries:
            raise InvalidDistributionError("country set must be nonempty")
        unknown = [c for c in self.countries if c not in COUNTRY_CODES]
        if unknown:
            raise UnknownCountryError(
                f"countries not in the 150-country dataset: {unknown}"
            )
        if len(set(self.countries)) != len(self.countries):
            raise InvalidDistributionError("duplicate country codes")
        if not 0.0 <= self.shared_site_base_fraction <= 0.8:
            raise InvalidDistributionError(
                "shared_site_base_fraction must be in [0, 0.8]"
            )
        if not 0.0 <= self.multi_cdn_fraction <= 0.5:
            raise InvalidDistributionError(
                "multi_cdn_fraction must be in [0, 0.5]"
            )
        if not 0.0 <= self.geo_error_rate < 1.0:
            raise InvalidDistributionError("geo_error_rate must be in [0, 1)")

    @property
    def effective_template_seed(self) -> int:
        """The seed the template heuristics actually use."""
        return self.template_seed if self.template_seed is not None else self.seed

    def with_countries(self, countries: tuple[str, ...]) -> "WorldConfig":
        """Copy of the config with a different country set."""
        return replace(self, countries=tuple(countries))

    def scaled(self, sites_per_country: int) -> "WorldConfig":
        """Copy of the config with a different toplist length."""
        return replace(self, sites_per_country=sites_per_country)


#: A fast scale for unit/integration tests.
SMALL_SCALE = WorldConfig(sites_per_country=400)

#: The benchmark scale: large enough for faithful shapes, small enough
#: to rebuild the world in seconds.
BENCH_SCALE = WorldConfig(sites_per_country=2_500)

#: The paper's scale (10K sites x 150 countries).
PAPER_SCALE = WorldConfig()
