"""World materialization: from calibrated templates to a living network.

:class:`World` assembles the entire synthetic web:

1. builds calibrated per-country, per-layer provider count targets
   (templates from :mod:`~repro.worldgen.profiles`, scores nailed by
   :mod:`~repro.worldgen.calibration`);
2. creates the globally shared site pool and each country's toplist,
   reconciling shared-site assignments against country targets with a
   residual-filling step;
3. couples the layers at the site level (sites reuse their hosting
   provider for DNS when the country's DNS target allows, and get
   certificates from their host's partner CAs — Sections 6.1/7.1);
4. materializes the substrate: ASes, prefixes, geolocation, anycast,
   authoritative zones, nameservers, and on-demand TLS certificates.

Everything is a deterministic function of the :class:`WorldConfig`.
"""

from __future__ import annotations

import re
import zlib
from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..core.reference import allocate_counts
from ..datasets.countries import COUNTRIES
from ..datasets.providers import HOSTING_CA_PARTNERSHIPS
from ..errors import CalibrationError, ReproError, TLSError
from ..net.addressing import KeyedPrefixAllocator, Prefix
from ..net.anycast import AnycastRegistry
from ..net.asdb import ASDatabase
from ..net.ccadb import CCADB, default_ccadb
from ..net.dns import Namespace
from ..net.geo import GeoDatabase
from ..net.http import HttpFabric, RedirectPolicy
from ..net.psl import CCTLD_OF_COUNTRY, PublicSuffixList, default_psl
from ..net.tls import Certificate, TLSFabric
from .calibration import calibrate_shares
from .residual import residual_counts, residual_counts_calibrated
from .config import WorldConfig
from .market import Provider, ProviderMarket
from .profiles import (
    LayerTemplate,
    ProfileBuilder,
    ProfileOverrides,
    hosting_affinities,
    hosting_insularity_target,
)
from .toplist import LANGUAGE_OF_COUNTRY, DomainFactory, Site, Toplist

__all__ = [
    "World",
    "SiteRecord",
    "ProviderInfra",
    "EvolutionPlan",
    "LAYER_NAMES",
]

LAYER_NAMES = ("hosting", "dns", "ca", "tld")

#: Continents where a global CDN operates points of presence.  Africa is
#: deliberately absent: the paper observes African toplists geolocating
#: to North America and Europe (Figure 8b).
_GLOBAL_POPS = ("NA", "EU", "AS", "SA", "OC")

_CONTINENT_ANCHOR = {"NA": "US", "EU": "DE", "AS": "SG", "SA": "BR", "OC": "AU"}

#: Providers headquartered outside the 150-country dataset still need a
#: continent for their home prefix.
_EXTRA_HOME_CONTINENTS = {"CN": "AS"}

_ADDRESS_VARIANTS = 32

#: Global CDNs that operate in-country cache nodes announced from local
#: ISP address space (Google-Global-Cache style).  In-country probes
#: attribute a slice of these providers' sites to the local telecom —
#: the realistic mechanism behind the paper's vantage-point divergence.
_CACHE_NODE_PROVIDERS = ("Cloudflare", "Google", "Akamai", "Amazon")

#: Shape of on-demand tail provider names (``ProviderMarket.tail_provider``);
#: used to revive identities referenced only by carried site records.
_TAIL_PROVIDER_NAME = re.compile(r"^([A-Z]{2}) Webhost (\d{4})$")


@dataclass(slots=True)
class SiteRecord:
    """Ground truth for one website (what the pipeline should measure)."""

    domain: str
    origin_country: str | None
    language: str
    is_global: bool
    hosting: str
    dns: str
    ca: str
    tld: str
    secondary_cdn: str | None = None


@dataclass(slots=True)
class ProviderInfra:
    """Materialized network presence of one provider."""

    provider: Provider
    asn: int
    continents: tuple[str, ...]
    address_variants: tuple[dict[str, int], ...]
    ns_hosts: tuple[str, ...]
    ns_domain: str
    anycast: bool

    def serving_address(self, variant: int, continent: str | None) -> int:
        """Serving IP for an address variant and vantage continent."""
        table = self.address_variants[variant % len(self.address_variants)]
        if continent is not None and continent in table:
            return table[continent]
        return table["default"]


def _slug(name: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")
    return slug or "provider"


@dataclass(frozen=True)
class EvolutionPlan:
    """Carryover state when evolving an old world into a new snapshot.

    Produced by :mod:`repro.worldgen.churn`; ``pool_records`` are the
    reused global-pool sites (copied, in popularity order via
    ``pool_order``) and ``kept_local`` are the per-country local sites
    that survive toplist churn.  ``kept_toplists`` carries *entire*
    toplists (domain tuples, in rank order) for countries excluded from
    churn — those countries skip every stochastic draw and reproduce
    the old snapshot's toplist byte-identically, which is what lets
    incremental re-measurement reuse their stored results.
    """

    overrides: ProfileOverrides
    pool_records: dict[str, "SiteRecord"]
    pool_order: tuple[str, ...]
    kept_local: dict[str, tuple["SiteRecord", ...]]
    kept_toplists: dict[str, tuple[str, ...]] = field(default_factory=dict)


class World:
    """The fully materialized synthetic web."""

    def __init__(
        self,
        config: WorldConfig | None = None,
        plan: EvolutionPlan | None = None,
    ) -> None:
        self.config = config or WorldConfig()
        self._plan = plan
        self.market = ProviderMarket()
        self.psl: PublicSuffixList = default_psl()
        self.asdb = ASDatabase()
        self.geo = GeoDatabase(
            error_rate=self.config.geo_error_rate, seed=self.config.seed
        )
        self.anycast = AnycastRegistry()
        self.namespace = Namespace(self.psl)
        self.ccadb: CCADB = default_ccadb()
        self.tls = TLSFabric()
        self.http = HttpFabric()

        self.sites: dict[str, SiteRecord] = {}
        self.toplists: dict[str, Toplist] = {}
        #: Globally shared site pool, most-popular first (the "Global
        #: Top 10k" aggregate of Figure 12 is its top ``C`` entries).
        self.global_pool_domains: list[str] = []
        self.provider_infra: dict[str, ProviderInfra] = {}
        self.calibration_report: dict[tuple[str, str], dict[str, float]] = {}
        #: country -> layer -> provider/CA/TLD -> target site count.
        self.targets: dict[str, dict[str, dict[str, int]]] = {}

        #: Keyed allocation: each provider (and each cache node) owns a
        #: hash-placed /16 block, so its addresses depend only on its
        #: own key and request sequence — not on which other providers
        #: exist.  This is what keeps an unchanged provider's addresses
        #: stable across world epochs (incremental re-measurement).
        self._blocks = KeyedPrefixAllocator()
        self._domains = DomainFactory(self.config.seed ^ 0x5EED)
        self._brand_of_ca: dict[str, str] = {}
        self._site_issuer: dict[str, tuple[str, str]] = {}

        self._build()

    # ------------------------------------------------------------------
    # RNG plumbing
    # ------------------------------------------------------------------

    def _rng(self, *scope: str | int) -> np.random.Generator:
        parts = [self.config.seed] + [
            zlib.crc32(str(s).encode()) for s in scope
        ]
        return np.random.default_rng(parts)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def _build(self) -> None:
        templates = self._build_templates()
        self._build_targets(templates)
        pool_sites = self._build_global_pool()
        self._build_countries(pool_sites)
        self._apply_language_case_studies()
        self._materialize_infrastructure()

    def _build_templates(self) -> dict[tuple[str, str], LayerTemplate]:
        overrides = self._plan.overrides if self._plan is not None else None
        builder = ProfileBuilder(self.market, self.config, overrides)
        templates: dict[tuple[str, str], LayerTemplate] = {}
        for cc in self.config.countries:
            templates[(cc, "hosting")] = builder.hosting_template(cc)
            templates[(cc, "dns")] = builder.dns_template(cc)
            templates[(cc, "ca")] = builder.ca_template(cc)
            templates[(cc, "tld")] = builder.tld_template(cc)
        return templates

    def _build_targets(
        self, templates: dict[tuple[str, str], LayerTemplate]
    ) -> None:
        c = self.config.sites_per_country
        for (cc, layer), template in templates.items():
            outcome = calibrate_shares(
                template.shares(), template.target_score, c
            )
            counts = allocate_counts(outcome.shares, c)
            names = template.names()
            target = {
                names[i]: int(n) for i, n in enumerate(counts) if n > 0
            }
            self.targets.setdefault(cc, {})[layer] = target
            shares = counts / counts.sum()
            self.calibration_report[(cc, layer)] = {
                "theta": outcome.theta,
                "target_score": template.target_score,
                "calibrated_score": outcome.achieved_score,
                "allocated_score": float(shares @ shares - 1.0 / c),
            }

    # -- global shared pool --------------------------------------------

    def _global_mixture(
        self, layer: str, min_presence_fraction: float = 0.0
    ) -> dict[str, float]:
        """Average country target shares across all countries.

        ``min_presence_fraction`` restricts the mixture to entities
        present in at least that fraction of countries — used to build
        the hyperscaler-heavy mixture behind the truly global sites.
        """
        mass: Counter[str] = Counter()
        presence: Counter[str] = Counter()
        n_countries = len(self.config.countries)
        for cc in self.config.countries:
            target = self.targets[cc][layer]
            total = sum(target.values())
            for name, count in target.items():
                mass[name] += count / total
                presence[name] += 1
        cutoff = min(
            n_countries, max(1, int(min_presence_fraction * n_countries))
        )
        mixture = {
            name: value
            for name, value in mass.items()
            if presence[name] >= cutoff
        }
        if not mixture:
            raise CalibrationError(f"no entities for {layer}")
        grand_total = sum(mixture.values())
        return {name: value / grand_total for name, value in mixture.items()}

    def _country_mixture(self, cc: str, layer: str) -> dict[str, float]:
        """One country's target distribution as a share mixture."""
        target = self.targets[cc][layer]
        total = sum(target.values())
        return {name: count / total for name, count in target.items()}

    def _sample_counts(
        self, mixture: dict[str, float], total: int
    ) -> list[str]:
        """Expand a share mixture into an exact list of labels."""
        names = sorted(mixture)
        counts = allocate_counts(
            np.array([mixture[n] for n in names]), total
        )
        labels: list[str] = []
        for name, count in zip(names, counts):
            labels.extend([name] * int(count))
        return labels

    #: Fraction of the pool that is truly global (google.com-like: no
    #: origin country, hyperscaler-hosted, .com-heavy).  The remainder
    #: are nationally popular sites that spill across borders.
    _TRULY_GLOBAL_FRACTION = 0.7

    #: Extra origin weight for countries with large web ecosystems.
    _ORIGIN_WEIGHT_EXTRA = {
        "US": 11, "IN": 3, "BR": 3, "RU": 3, "JP": 3, "DE": 3, "GB": 3,
        "FR": 2, "ID": 2, "KR": 2, "MX": 1, "TR": 1, "CA": 1, "ES": 1,
        "IT": 1, "PL": 1, "NL": 1, "AU": 1,
    }

    def _truly_global_mixture(self, layer: str) -> dict[str, float]:
        """Distribution of the truly global sites.

        The global web's head looks like the U.S. toplist — American
        hyperscalers for hosting/DNS, .com-dominated TLDs — which is
        exactly why the Global Top marker of Figure 12 tracks the
        hosting/DNS/CA averages but not the TLD one.  Falls back to the
        broadly-present mixture when the U.S. is not in the study.
        """
        if "US" in self.targets:
            return self._country_mixture("US", layer)
        return self._global_mixture(layer, min_presence_fraction=0.25)

    def _assign_block(
        self,
        k: int,
        hosting_mixture: dict[str, float],
        dns_mixture: dict[str, float],
        ca_mixture: dict[str, float],
        tld_mixture: dict[str, float],
        rng: np.random.Generator,
    ) -> tuple[list[str], list[str], list[str], list[str]]:
        """Assign all four layers for a block of ``k`` pool sites,
        coupling DNS to hosting and CAs to host partnerships."""
        hosting = self._sample_counts(hosting_mixture, k)
        tld = self._sample_counts(tld_mixture, k)
        rng.shuffle(hosting)
        rng.shuffle(tld)
        dns_budget = Counter(self._sample_counts(dns_mixture, k))
        ca_labels = self._sample_counts(ca_mixture, k)
        ca_budget = Counter(ca_labels)
        ca_initial = dict(ca_budget)

        assigned_dns: list[str] = []
        assigned_ca: list[str] = []
        for i in range(k):
            host = hosting[i]
            provider = self.market.get(host)
            if (
                provider is not None
                and provider.offers_dns
                and dns_budget.get(host, 0) > 0
            ):
                assigned_dns.append(host)
                dns_budget[host] -= 1
            else:
                assigned_dns.append("")
            assigned_ca.append(self._pick_ca(host, ca_budget, ca_initial))
        leftovers = [
            name
            for name, count in sorted(dns_budget.items())
            for _ in range(count)
        ]
        rng.shuffle(leftovers)
        it = iter(leftovers)
        assigned_dns = [d if d else next(it) for d in assigned_dns]
        return hosting, assigned_dns, assigned_ca, tld

    def _build_global_pool(self) -> list[Site]:
        if self._plan is not None:
            # Reuse the previous snapshot's pool: global sites persist
            # across measurement epochs.
            self._domains.reserve(set(self._plan.pool_records))
            sites: list[Site] = []
            for domain in self._plan.pool_order:
                old = self._plan.pool_records[domain]
                record = SiteRecord(
                    domain=old.domain,
                    origin_country=old.origin_country,
                    language=old.language,
                    is_global=True,
                    hosting=old.hosting,
                    dns=old.dns,
                    ca=old.ca,
                    tld=old.tld,
                    secondary_cdn=old.secondary_cdn,
                )
                self.sites[domain] = record
                self.global_pool_domains.append(domain)
                sites.append(
                    Site(
                        domain=domain,
                        origin_country=old.origin_country,
                        language=old.language,
                        is_global=True,
                    )
                )
            return sites

        c = self.config.sites_per_country
        n_pool = int(self.config.global_pool_factor * c)
        rng = self._rng("global-pool")
        n_global = int(self._TRULY_GLOBAL_FRACTION * n_pool)

        # Origin countries for the nationally popular remainder.
        origin_weights = {
            cc: 1.0 + self._ORIGIN_WEIGHT_EXTRA.get(cc, 0)
            for cc in self.config.countries
        }
        origins = sorted(origin_weights)
        origin_counts = allocate_counts(
            np.array([origin_weights[o] for o in origins]),
            n_pool - n_global,
        )

        # Assign layers block by block: the global block from the
        # hyperscaler mixture, each origin block from its country's own
        # calibrated distribution.
        blocks: list[tuple[str | None, list[str], list[str], list[str], list[str]]] = []
        global_assignment = self._assign_block(
            n_global,
            self._truly_global_mixture("hosting"),
            self._truly_global_mixture("dns"),
            self._truly_global_mixture("ca"),
            self._truly_global_mixture("tld"),
            rng,
        )
        blocks.append((None, *global_assignment))
        for origin, k in zip(origins, origin_counts):
            if k == 0:
                continue
            blocks.append(
                (
                    origin,
                    *self._assign_block(
                        int(k),
                        self._country_mixture(origin, "hosting"),
                        self._country_mixture(origin, "dns"),
                        self._country_mixture(origin, "ca"),
                        self._country_mixture(origin, "tld"),
                        rng,
                    ),
                )
            )

        # Flatten into one (origin, hosting, dns, ca, tld) stream, then
        # order it so the truly global sites dominate the popular head.
        rows: list[tuple[str | None, str, str, str, str]] = []
        for origin, hosting, dns, ca, tld in blocks:
            for i in range(len(hosting)):
                rows.append((origin, hosting[i], dns[i], ca[i], tld[i]))
        priority = np.where(
            np.array([row[0] is None for row in rows]),
            rng.random(len(rows)),
            1.0 + rng.random(len(rows)),
        )
        order = np.argsort(priority, kind="stable")
        rows = [rows[int(i)] for i in order]

        secondary_pool = ["Akamai", "Fastly", "Google", "Microsoft"]
        n_multi = int(self.config.multi_cdn_fraction * n_pool)
        global_positions = [
            i for i, row in enumerate(rows) if row[0] is None
        ]
        multi_indices: set[int] = set()
        if n_multi and global_positions:
            picks = rng.choice(
                len(global_positions),
                size=min(n_multi, len(global_positions)),
                replace=False,
            )
            multi_indices = {global_positions[int(i)] for i in picks}

        sites: list[Site] = []
        for i, (origin, hosting, dns, ca, tld) in enumerate(rows):
            domain = self._domains.make(tld, hint="g")
            if origin is None:
                language = "en" if rng.random() < 0.85 else "es"
            else:
                language = LANGUAGE_OF_COUNTRY[origin]
            site = Site(
                domain=domain,
                origin_country=origin,
                language=language,
                is_global=True,
            )
            sites.append(site)
            secondary = None
            if i in multi_indices:
                choices = [s for s in secondary_pool if s != hosting]
                secondary = choices[int(rng.integers(0, len(choices)))]
            self.sites[domain] = SiteRecord(
                domain=domain,
                origin_country=origin,
                language=language,
                is_global=True,
                hosting=hosting,
                dns=dns,
                ca=ca,
                tld=tld,
                secondary_cdn=secondary,
            )
            self.global_pool_domains.append(domain)
        return sites

    def _pick_ca(
        self,
        host: str,
        ca_budget: Counter[str],
        ca_initial: dict[str, int] | None = None,
    ) -> str:
        """Choose a CA honoring hosting/CA partnerships when possible.

        The fallback keeps the draw *proportionally balanced*: it picks
        the CA with the highest remaining/initial ratio, so any prefix
        of the assignment stream approximates the target mixture (the
        popular head of the pool must not drain one CA first).
        """
        partnerships = HOSTING_CA_PARTNERSHIPS.get(host)
        if partnerships:
            best, best_score = None, -1.0
            for ca_name, weight in partnerships:
                remaining = ca_budget.get(ca_name, 0)
                if remaining > 0 and remaining * weight > best_score:
                    best, best_score = ca_name, remaining * weight
            if best is not None:
                ca_budget[best] -= 1
                return best

        def ratio(name: str) -> float:
            if ca_initial is None:
                return float(ca_budget[name])
            return ca_budget[name] / max(ca_initial.get(name, 1), 1)

        best = max(
            (name for name, count in ca_budget.items() if count > 0),
            key=lambda name: (ratio(name), ca_budget[name], name),
            default=None,
        )
        if best is None:
            raise CalibrationError("CA budget exhausted")
        ca_budget[best] -= 1
        return best

    # -- per-country assembly ------------------------------------------

    def _shared_fraction(self, cc: str) -> float:
        insular = hosting_insularity_target(cc)
        return self.config.shared_site_base_fraction * (1.0 - 0.75 * insular)

    def _residual_counts(
        self,
        target: dict[str, int],
        used: Counter[str],
        slots: int,
    ) -> dict[str, int]:
        return residual_counts(target, used, slots)

    def _residual_counts_calibrated(
        self,
        target: dict[str, int],
        used: Counter[str],
        slots: int,
        target_score: float,
    ) -> dict[str, int]:
        return residual_counts_calibrated(
            target, used, slots, target_score
        )

    def _selection_weights(
        self, cc: str, pool_sites: list[Site], popularity: np.ndarray
    ) -> np.ndarray:
        """Per-country weights over the shared pool.

        A country samples globally popular sites by popularity, but
        nationally popular foreign sites mostly spill into their own
        country, their neighborhood, and their geopolitical affinities
        (a Russian site is far likelier in a CIS toplist than a
        Brazilian one).
        """
        affinity_homes = {home for home, _ in hosting_affinities(cc)}
        me = COUNTRIES[cc]
        factors = np.empty(len(pool_sites))
        for i, site in enumerate(pool_sites):
            origin = site.origin_country
            if origin is None:
                factor = 1.2
            elif origin == cc:
                factor = 6.0
            elif origin in affinity_homes:
                factor = 1.8
            else:
                other = COUNTRIES[origin]
                if other.subregion == me.subregion:
                    factor = 2.0
                elif other.continent == me.continent:
                    factor = 1.3
                else:
                    factor = 0.6
            factors[i] = factor
        weights = popularity * factors
        return weights / weights.sum()

    def _build_countries(self, pool_sites: list[Site]) -> None:
        n_pool = len(pool_sites)
        # Global-pool popularity: Zipf weights over pool index.
        popularity = 1.0 / np.arange(1, n_pool + 1, dtype=float)
        popularity /= popularity.sum()
        c = self.config.sites_per_country

        kept_local = (
            self._plan.kept_local if self._plan is not None else {}
        )
        if kept_local:
            self._domains.reserve(
                {
                    record.domain
                    for records in kept_local.values()
                    for record in records
                }
            )

        kept_toplists = (
            self._plan.kept_toplists if self._plan is not None else {}
        )

        for cc in self.config.countries:
            if cc in kept_toplists:
                # The country is excluded from churn: reproduce its old
                # toplist exactly (local records carried via kept_local
                # in rank order, shared sites already materialized from
                # the carried pool) without consuming any randomness.
                for old in kept_local.get(cc, ()):
                    record = SiteRecord(
                        domain=old.domain,
                        origin_country=old.origin_country,
                        language=old.language,
                        is_global=False,
                        hosting=old.hosting,
                        dns=old.dns,
                        ca=old.ca,
                        tld=old.tld,
                        secondary_cdn=old.secondary_cdn,
                    )
                    self.sites[record.domain] = record
                self.toplists[cc] = Toplist(
                    country=cc, domains=tuple(kept_toplists[cc])
                )
                continue
            rng = self._rng("country", cc)
            kept_records = kept_local.get(cc, ())
            max_shared = c - len(kept_records)
            n_shared = min(
                int(self._shared_fraction(cc) * c), n_pool, max_shared
            )
            shared_idx = rng.choice(
                n_pool,
                size=n_shared,
                replace=False,
                p=self._selection_weights(cc, pool_sites, popularity),
            )
            shared_idx = np.sort(shared_idx)
            shared_domains = [pool_sites[int(i)].domain for i in shared_idx]

            kept_domains: list[str] = []
            for old in kept_records:
                record = SiteRecord(
                    domain=old.domain,
                    origin_country=old.origin_country,
                    language=old.language,
                    is_global=False,
                    hosting=old.hosting,
                    dns=old.dns,
                    ca=old.ca,
                    tld=old.tld,
                    secondary_cdn=old.secondary_cdn,
                )
                self.sites[record.domain] = record
                kept_domains.append(record.domain)

            used: dict[str, Counter[str]] = {
                layer: Counter() for layer in LAYER_NAMES
            }
            for domain in shared_domains + kept_domains:
                record = self.sites[domain]
                used["hosting"][record.hosting] += 1
                used["dns"][record.dns] += 1
                used["ca"][record.ca] += 1
                used["tld"][record.tld] += 1

            slots = c - n_shared - len(kept_domains)
            residual = {
                layer: self._residual_counts_calibrated(
                    self.targets[cc][layer],
                    used[layer],
                    slots,
                    self.calibration_report[(cc, layer)]["target_score"],
                )
                for layer in LAYER_NAMES
            }

            new_domains = self._create_local_sites(cc, residual, slots, rng)
            local_domains = kept_domains + new_domains
            if kept_domains and new_domains:
                order = rng.permutation(len(local_domains))
                local_domains = [local_domains[int(i)] for i in order]

            # Interleave shared (popular) sites toward the top.
            merged: list[str] = []
            shared_iter = iter(shared_domains)
            local_iter = iter(local_domains)
            shared_left = n_shared
            local_left = len(local_domains)
            for rank in range(c):
                remaining = c - rank
                take_shared = shared_left > 0 and (
                    local_left == 0
                    or rng.random() < 1.6 * shared_left / remaining
                )
                if take_shared:
                    merged.append(next(shared_iter))
                    shared_left -= 1
                else:
                    merged.append(next(local_iter))
                    local_left -= 1
            self.toplists[cc] = Toplist(country=cc, domains=tuple(merged))

    def _create_local_sites(
        self,
        cc: str,
        residual: dict[str, dict[str, int]],
        slots: int,
        rng: np.random.Generator,
    ) -> list[str]:
        hosting_labels = [
            name
            for name, count in sorted(residual["hosting"].items())
            for _ in range(count)
        ]
        tld_labels = [
            name
            for name, count in sorted(residual["tld"].items())
            for _ in range(count)
        ]
        rng.shuffle(hosting_labels)
        rng.shuffle(tld_labels)
        dns_budget = Counter(residual["dns"])
        ca_budget = Counter(residual["ca"])
        ca_initial = dict(ca_budget)
        language = LANGUAGE_OF_COUNTRY[cc]
        cctld = CCTLD_OF_COUNTRY[cc]

        domains: list[str] = []
        deferred_dns: list[int] = []
        records: list[SiteRecord] = []
        for i in range(slots):
            host = hosting_labels[i]
            tld = tld_labels[i]
            suffix = tld
            if tld == cctld and rng.random() < 0.3:
                # Second-level registration (co.uk style) when the
                # registry supports it.
                for second in ("co", "com", "org"):
                    candidate = f"{second}.{tld}"
                    if self.psl.is_public_suffix(candidate):
                        suffix = candidate
                        break
            domain = self._domains.make(suffix, hint=cc.lower())
            provider = self.market.get(host)
            if (
                provider is not None
                and provider.offers_dns
                and dns_budget.get(host, 0) > 0
            ):
                dns = host
                dns_budget[host] -= 1
            else:
                dns = ""
                deferred_dns.append(i)
            record = SiteRecord(
                domain=domain,
                origin_country=cc,
                language=language,
                is_global=False,
                hosting=host,
                dns=dns,
                ca=self._pick_ca(host, ca_budget, ca_initial),
                tld=tld,
            )
            records.append(record)
            domains.append(domain)
            self.sites[domain] = record

        leftovers = [
            name
            for name, count in sorted(dns_budget.items())
            for _ in range(count)
        ]
        rng.shuffle(leftovers)
        for i, dns_name in zip(deferred_dns, leftovers):
            records[i].dns = dns_name
        # If budgets misalign (rounding), backfill with the host itself.
        for i in deferred_dns[len(leftovers):]:
            records[i].dns = records[i].hosting
        return domains

    def _apply_language_case_studies(self) -> None:
        """Afghanistan/Iran Persian-language coupling (Section 5.3.3).

        31.4% of Afghan top sites are Persian; 60.8% of the Persian
        sites are hosted in Iran — realized by making nearly all
        Iranian-hosted Afghan sites Persian and topping up the rest.
        """
        if "AF" not in self.config.countries:
            return
        if self._plan is not None and "AF" in self._plan.kept_toplists:
            # Afghanistan carried byte-identically: its records already
            # hold the languages this pass assigned in the old epoch.
            return
        rng = self._rng("lang", "AF")
        af_sites = [
            self.sites[d]
            for d in self.toplists["AF"].domains
            if not self.sites[d].is_global
        ]
        if not af_sites:
            return
        target_persian = 0.314 * len(self.toplists["AF"].domains)
        persian = 0
        others: list[SiteRecord] = []
        for record in af_sites:
            home = self.market.home_country_of(record.hosting)
            # 60.8% of Persian AF sites are in Iran while ~20% of all
            # AF sites are — so nearly all (but not all) Iranian-hosted
            # Afghan sites are Persian.
            if home == "IR" and rng.random() < 0.955:
                record.language = "fa"
                persian += 1
            else:
                record.language = "ps"
                others.append(record)
        deficit = max(0, int(target_persian) - persian)
        if others and deficit:
            picks = rng.choice(
                len(others), size=min(deficit, len(others)), replace=False
            )
            for i in picks:
                others[int(i)].language = "fa"

    # ------------------------------------------------------------------
    # Infrastructure materialization
    # ------------------------------------------------------------------

    def _home_continent(self, country: str) -> str:
        if country in COUNTRIES:
            return COUNTRIES[country].continent
        return _EXTRA_HOME_CONTINENTS.get(country, "NA")

    def _countries_served(self) -> dict[str, set[str]]:
        served: dict[str, set[str]] = {}
        for cc in self.config.countries:
            for layer in ("hosting", "dns"):
                for name in self.targets[cc][layer]:
                    served.setdefault(name, set()).add(cc)
        return served

    def _materialize_provider(
        self, name: str, n_countries_served: int
    ) -> ProviderInfra:
        provider = self.market.get(name)
        if provider is None:
            # Tail providers are created in the market on demand while
            # drawing targets; a carried site record (evolution with
            # restricted churn) can reference one that the new draw
            # never touched.  Its identity is a pure function of the
            # name, so revive it rather than falling back to a US-homed
            # placeholder — the revived home country keeps the carried
            # country's observables (geo labels) byte-stable.
            match = _TAIL_PROVIDER_NAME.match(name)
            if match is not None:
                provider = self.market.tail_provider(
                    match.group(1), int(match.group(2))
                )
            else:  # pragma: no cover - defensive
                provider = Provider(name=name, home_country="US")
        home = provider.home_country
        home_continent = self._home_continent(home)

        is_global = n_countries_served >= 20 or provider.anycast
        if is_global:
            continents = tuple(
                dict.fromkeys(list(_GLOBAL_POPS))
            )
        else:
            continents = (home_continent,)

        prefix_len = 20 if is_global else 24
        tables: list[dict[str, int]] = [
            {} for _ in range(_ADDRESS_VARIANTS)
        ]
        for continent in continents:
            geo_country = (
                home
                if continent == home_continent and not is_global
                else _CONTINENT_ANCHOR.get(continent, "US")
            )
            if is_global and continent == home_continent:
                geo_country = home if home in COUNTRIES else geo_country
            prefix = self._blocks.allocate(f"provider:{name}", prefix_len)
            self.asdb_register_or_announce(name, home, prefix)
            self.geo.register(prefix, geo_country, continent)
            for variant in range(_ADDRESS_VARIANTS):
                tables[variant][continent] = prefix.address(variant)
        default_continent = (
            home_continent if home_continent in continents else continents[0]
        )
        if is_global:
            default_continent = "NA" if "NA" in continents else continents[0]
        for variant in range(_ADDRESS_VARIANTS):
            tables[variant]["default"] = tables[variant][default_continent]

        if name in _CACHE_NODE_PROVIDERS:
            self._install_cache_nodes(name, tables)

        # Nameserver presence.
        slug = _slug(name)
        ns_domain = f"{slug}-dns.com"
        suffix_tag = 1
        while self.namespace.zone(ns_domain) is not None:
            suffix_tag += 1
            ns_domain = f"{slug}{suffix_tag}-dns.com"
        zone = self.namespace.create_zone(ns_domain)
        ns_hosts = (f"ns1.{ns_domain}", f"ns2.{ns_domain}")
        if provider.anycast:
            ns_prefix = self._blocks.allocate(f"provider:{name}", 24)
            self.anycast.add(ns_prefix)
            self.geo.register(ns_prefix, "US", "NA")
            ns_addresses = (ns_prefix.address(1), ns_prefix.address(2))
        else:
            ns_prefix = self._blocks.allocate(f"provider:{name}", 26)
            self.geo.register(ns_prefix, home if home in COUNTRIES else "US",
                              home_continent)
            ns_addresses = (ns_prefix.address(1), ns_prefix.address(2))
        self.asdb_register_or_announce(name, home, ns_prefix)
        zone.add("@", "NS", ns_hosts[0], ttl=self.config.dns_ttl)
        zone.add("@", "NS", ns_hosts[1], ttl=self.config.dns_ttl)
        zone.add("ns1", "A", ns_addresses[0], ttl=self.config.dns_ttl)
        zone.add("ns2", "A", ns_addresses[1], ttl=self.config.dns_ttl)

        return ProviderInfra(
            provider=provider,
            asn=self.asdb.asns_of_org(name)[0],
            continents=continents,
            address_variants=tuple(tables),
            ns_hosts=ns_hosts,
            ns_domain=ns_domain,
            anycast=provider.anycast,
        )

    def _install_cache_nodes(
        self, provider_name: str, tables: list[dict[str, int]]
    ) -> None:
        """Give a global CDN in-country cache nodes in some countries.

        The cache address space is announced by the local telecom's AS,
        so an in-country probe attributes a slice (a few address
        variants' worth) of the CDN's sites to the local organization.
        Only country-keyed entries are added: the Stanford (NA) vantage
        never sees them, keeping calibration exact.
        """
        rng = self._rng("cache-nodes", provider_name)
        for cc in self.config.countries:
            if cc == "US":
                continue
            n_variants = int(rng.integers(0, 8))
            if n_variants == 0:
                continue
            pool = self.market.local_large(cc)
            if not pool:
                continue
            telecom = pool[min(1, len(pool) - 1)]
            prefix = self._blocks.allocate(
                f"cache:{provider_name}:{cc}", 26
            )
            self.asdb_register_or_announce(telecom.name, cc, prefix)
            self.geo.register(prefix, cc, self._home_continent(cc))
            picks = rng.choice(
                _ADDRESS_VARIANTS, size=n_variants, replace=False
            )
            for j, variant in enumerate(picks):
                tables[int(variant)][f"cc:{cc}"] = prefix.address(j)

    def asdb_register_or_announce(
        self, org: str, country: str, prefix: Prefix
    ) -> None:
        """Register a new AS for the org, or announce the prefix from its existing one."""
        asns = self.asdb.asns_of_org(org)
        if asns:
            self.asdb.announce(asns[0], prefix)
        else:
            self.asdb.register(org, country, (prefix,))

    def _materialize_infrastructure(self) -> None:
        served = self._countries_served()
        # Carried-over sites may reference providers that fell out of
        # every target (longitudinal churn); they still need presence.
        for record in self.sites.values():
            for name in (record.hosting, record.dns, record.secondary_cdn):
                if name and name not in served:
                    served[name] = {record.origin_country or "US"}
        for name in sorted(served):
            self.provider_infra[name] = self._materialize_provider(
                name, len(served[name])
            )

        # Per-site zones and certificates.
        for domain, record in self.sites.items():
            zone = self.namespace.create_zone(domain)
            dns_infra = self.provider_infra[record.dns]
            host_infra = self.provider_infra[record.hosting]
            for ns_host in dns_infra.ns_hosts:
                zone.add("@", "NS", ns_host, ttl=self.config.dns_ttl)
            variant = zlib.crc32(domain.encode()) % _ADDRESS_VARIANTS
            table = dict(
                host_infra.address_variants[variant]
            )
            if record.secondary_cdn is not None:
                secondary = self.provider_infra.get(record.secondary_cdn)
                if secondary is not None:
                    # The secondary CDN wins the mapping outside North
                    # America (multi-CDN load balancing differs by
                    # client region) — the source of vantage-point
                    # divergence in Section 3.4.
                    for continent in ("EU", "AS", "SA", "OC", "AF"):
                        if continent in secondary.address_variants[variant]:
                            table[continent] = secondary.address_variants[
                                variant
                            ][continent]
            zone.add("@", "A", table, ttl=self.config.dns_ttl)
            # Roughly a third of the web redirects its apex to www
            # (deterministic per domain); those sites also publish a
            # www address record for the scanner to follow.
            if zlib.crc32(b"www:" + domain.encode()) % 100 < 35:
                self.http.set_policy(domain, RedirectPolicy.TO_WWW)
                zone.add("www", "A", table, ttl=self.config.dns_ttl)
            self._site_issuer[domain] = self._issuer_for(record.ca)

    def _issuer_for(self, ca_owner: str) -> tuple[str, str]:
        brand = self._brand_of_ca.get(ca_owner)
        if brand is None:
            from ..net.ccadb import _KNOWN_BRANDS

            brands = _KNOWN_BRANDS.get(ca_owner)
            brand = brands[0] if brands else ca_owner
            self._brand_of_ca[ca_owner] = brand
        return brand, ca_owner

    # ------------------------------------------------------------------
    # Runtime services used by the pipeline
    # ------------------------------------------------------------------

    def tls_handshake(
        self,
        address: int,
        sni: str,
        fault_hook: "Callable[[int, str], None] | None" = None,
    ) -> Certificate:
        """Complete a TLS handshake with a hosting IP for a site.

        Certificates are minted on demand (deterministically) so that a
        million-site world does not hold a million certificate objects;
        the handshake still validates that the address actually serves
        the SNI's hosting provider.  ``www.<domain>`` SNIs (reached by
        following a redirect) are served wildcard certificates for the
        registrable domain.

        ``fault_hook`` is called as ``hook(address, sni)`` before the
        connection is attempted; it models connection-level faults
        (flaps, timeouts) by raising, the way a real handshake fails
        before any certificate is seen.
        """
        sni = sni.lower().rstrip(".")
        if fault_hook is not None:
            fault_hook(address, sni)
        registrable = sni
        if sni not in self.sites:
            try:
                registrable = self.psl.split(sni).registrable
            except ReproError:
                raise TLSError(f"no certificate provisioned for {sni!r}")
        issuer = self._site_issuer.get(registrable)
        record = self.sites.get(registrable)
        if issuer is None or record is None:
            raise TLSError(f"no certificate provisioned for {sni!r}")
        org = self.asdb.org_of_ip(address)
        valid_orgs = {record.hosting}
        if record.secondary_cdn is not None:
            valid_orgs.add(record.secondary_cdn)
        if org is None or org not in valid_orgs:
            raise TLSError(
                f"{sni!r} is not served at address {address} (org {org!r})"
            )
        issuer_cn, issuer_org = issuer
        return self.tls.issue(
            hostname=registrable,
            issuer_cn=issuer_cn,
            issuer_org=issuer_org,
            wildcard=sni != registrable,
        )

    def page_content(self, domain: str) -> str:
        """The text snippet a site serves (deterministic per domain).

        This is what the pipeline's language-detection step consumes —
        the site's language is never read off the record, it is
        *detected* from content, as the paper does with LangDetect.
        """
        from ..text import generate_text

        record = self.sites.get(domain.lower().rstrip("."))
        if record is None:
            raise TLSError(f"no site {domain!r} to fetch content from")
        return generate_text(record.language, record.domain)

    def ground_truth_counts(self, cc: str, layer: str) -> dict[str, int]:
        """Realized per-layer counts for a country's toplist."""
        counts: Counter[str] = Counter()
        for domain in self.toplists[cc].domains:
            record = self.sites[domain]
            counts[getattr(record, layer)] += 1
        return dict(counts)

    def provider_home(self, name: str) -> str | None:
        """Home country of a provider by name."""
        infra = self.provider_infra.get(name)
        if infra is not None:
            return infra.provider.home_country
        return self.market.home_country_of(name)

    def ca_home(self, ca_owner: str) -> str | None:
        """Home country of a CA owner."""
        if ca_owner in self.ccadb:
            return self.ccadb.owner(ca_owner).country
        return None
