"""Calibration solvers: hitting a target Centralization Score exactly.

The world generator builds a *template* share vector per (country,
layer) from anchored heuristics, then calibrates it to the published
score with a monotone one-parameter family: raising shares to a power
``theta`` and renormalizing.  ``theta > 1`` concentrates the
distribution (S grows); ``theta < 1`` flattens it (S shrinks); the map
``theta -> S`` is strictly increasing whenever the shares are not all
equal, so a plain bisection suffices.

A second helper synthesizes long-tail share mass with a prescribed
contribution to the sum of squares, using the geometric family's
closed-form inverse (the same family behind Figure 3).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..errors import CalibrationError, InvalidDistributionError

__all__ = [
    "power_transform",
    "score_of_shares",
    "solve_theta",
    "calibrate_shares",
    "geometric_tail",
    "CalibrationOutcome",
]


def score_of_shares(shares: np.ndarray, total_sites: int) -> float:
    """Centralization Score of a normalized share vector at scale C."""
    return float(shares @ shares - 1.0 / total_sites)


def power_transform(shares: np.ndarray, theta: float) -> np.ndarray:
    """``normalize(shares ** theta)`` computed in log space for stability."""
    if theta <= 0:
        raise InvalidDistributionError(f"theta must be positive, got {theta}")
    logs = theta * np.log(shares)
    logs -= logs.max()
    v = np.exp(logs)
    return v / v.sum()


def _validate_shares(shares: Sequence[float] | np.ndarray) -> np.ndarray:
    v = np.asarray(shares, dtype=float)
    if v.ndim != 1 or v.size == 0:
        raise InvalidDistributionError("shares must be a nonempty 1-D array")
    if np.any(v <= 0) or not np.all(np.isfinite(v)):
        raise InvalidDistributionError(
            "template shares must be strictly positive and finite"
        )
    return v / v.sum()


def solve_theta(
    shares: Sequence[float] | np.ndarray,
    target_score: float,
    total_sites: int,
    *,
    lo: float = 0.05,
    hi: float = 12.0,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> float:
    """Bisection for the power that calibrates shares to a target S.

    Returns the clamped bound when the target lies outside the
    attainable range (the caller decides whether the residual error is
    acceptable); raises :class:`CalibrationError` only for degenerate
    templates (all shares equal, so ``theta`` has no effect).
    """
    v = _validate_shares(shares)
    if not 0.0 <= target_score < 1.0:
        raise InvalidDistributionError(
            f"target score must be in [0, 1), got {target_score}"
        )
    if np.allclose(v, v[0]):
        raise CalibrationError(
            "template is uniform; the power family cannot move its score"
        )

    def s_of(theta: float) -> float:
        return score_of_shares(power_transform(v, theta), total_sites)

    s_lo, s_hi = s_of(lo), s_of(hi)
    if target_score <= s_lo:
        return lo
    if target_score >= s_hi:
        return hi
    a, b = lo, hi
    for _ in range(max_iter):
        mid = 0.5 * (a + b)
        if s_of(mid) < target_score:
            a = mid
        else:
            b = mid
        if b - a < tol:
            break
    return 0.5 * (a + b)


class CalibrationOutcome:
    """Calibrated shares plus diagnostics."""

    __slots__ = ("shares", "theta", "achieved_score", "target_score")

    def __init__(
        self,
        shares: np.ndarray,
        theta: float,
        achieved_score: float,
        target_score: float,
    ) -> None:
        self.shares = shares
        self.theta = theta
        self.achieved_score = achieved_score
        self.target_score = target_score

    @property
    def error(self) -> float:
        """Absolute difference between achieved and target score."""
        return abs(self.achieved_score - self.target_score)

    def __repr__(self) -> str:
        return (
            f"CalibrationOutcome(theta={self.theta:.4f}, "
            f"S={self.achieved_score:.4f} -> target {self.target_score:.4f})"
        )


def calibrate_shares(
    shares: Sequence[float] | np.ndarray,
    target_score: float,
    total_sites: int,
) -> CalibrationOutcome:
    """Calibrate a template share vector to a target score."""
    v = _validate_shares(shares)
    theta = solve_theta(v, target_score, total_sites)
    calibrated = power_transform(v, theta)
    return CalibrationOutcome(
        shares=calibrated,
        theta=theta,
        achieved_score=score_of_shares(calibrated, total_sites),
        target_score=target_score,
    )


def geometric_tail(
    mass: float,
    squared_sum: float,
    unit: float,
) -> list[float]:
    """Share tail with total ``mass`` and ``sum(share^2) ≈ squared_sum``.

    ``unit`` is the share of a single website (``1/C``): the tail never
    contains entries smaller than one site.  Within the tail, shares
    follow the geometric family whose parameter is solved from the
    normalized concentration ``h = squared_sum / mass^2`` via
    ``p = 2h / (1 + h)``; residual mass becomes single-site entries.

    The attainable concentration is clamped to ``[mass * unit, mass^2]``
    (all-singletons ... single-provider).
    """
    if mass <= 0:
        return []
    if unit <= 0 or unit > mass:
        raise InvalidDistributionError(
            f"unit {unit} must be in (0, mass={mass}]"
        )
    floor = mass * unit  # every site its own provider
    squared_sum = min(max(squared_sum, floor), mass * mass)
    h = squared_sum / (mass * mass)
    p = 2.0 * h / (1.0 + h)

    shares: list[float] = []
    current = p * mass
    # Truncate once entries fall below one site's share.
    while current >= unit and len(shares) * unit < mass:
        shares.append(current)
        current *= 1.0 - p
        if current <= 0.0:
            break
    allocated = sum(shares)
    remaining = mass - allocated
    n_singletons = max(0, int(math.floor(remaining / unit + 1e-9)))
    shares.extend([unit] * n_singletons)
    leftover = mass - sum(shares)
    if leftover > 1e-12 and shares:
        # Fold rounding residue into the largest entry.
        shares[0] += leftover
    return shares
