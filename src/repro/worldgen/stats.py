"""World inventory: what a generated world actually contains.

A :class:`WorldSummary` makes the synthetic web auditable at a glance —
site/zone/provider/AS/prefix counts, layer entity counts, and the
calibration error distribution — and renders to a short report used by
examples and sanity tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .world import LAYER_NAMES, World

__all__ = ["WorldSummary", "summarize"]


@dataclass(frozen=True)
class WorldSummary:
    """Inventory of a built world."""

    countries: int
    sites_per_country: int
    distinct_sites: int
    global_pool_sites: int
    zones: int
    providers_with_infra: int
    autonomous_systems: int
    anycast_prefixes: int
    entities_per_layer: dict[str, int]
    calibration_mean_error: float
    calibration_max_error: float
    snapshot: str

    def render(self) -> str:
        """Render the summary as indented text."""
        lines = [
            f"snapshot {self.snapshot}: {self.countries} countries x "
            f"{self.sites_per_country} sites",
            f"  distinct sites:        {self.distinct_sites:,} "
            f"(global pool: {self.global_pool_sites:,})",
            f"  authoritative zones:   {self.zones:,}",
            f"  providers with infra:  {self.providers_with_infra:,}",
            f"  autonomous systems:    {self.autonomous_systems:,}",
            f"  anycast prefixes:      {self.anycast_prefixes:,}",
        ]
        for layer in LAYER_NAMES:
            lines.append(
                f"  {layer:8s} entities:    "
                f"{self.entities_per_layer[layer]:,}"
            )
        lines.append(
            f"  calibration |S error|: mean "
            f"{self.calibration_mean_error:.2e}, max "
            f"{self.calibration_max_error:.2e}"
        )
        return "\n".join(lines)


def summarize(world: World) -> WorldSummary:
    """Take a full inventory of a built world."""
    entities: dict[str, Counter[str]] = {
        layer: Counter() for layer in LAYER_NAMES
    }
    for record in world.sites.values():
        entities["hosting"][record.hosting] += 1
        entities["dns"][record.dns] += 1
        entities["ca"][record.ca] += 1
        entities["tld"][record.tld] += 1

    errors = [
        abs(report["allocated_score"] - report["target_score"])
        for report in world.calibration_report.values()
    ]
    return WorldSummary(
        countries=len(world.config.countries),
        sites_per_country=world.config.sites_per_country,
        distinct_sites=len(world.sites),
        global_pool_sites=len(world.global_pool_domains),
        zones=len(world.namespace),
        providers_with_infra=len(world.provider_infra),
        autonomous_systems=len(world.asdb),
        anycast_prefixes=len(world.anycast),
        entities_per_layer={
            layer: len(counter) for layer, counter in entities.items()
        },
        calibration_mean_error=float(np.mean(errors)) if errors else 0.0,
        calibration_max_error=float(np.max(errors)) if errors else 0.0,
        snapshot=world.config.snapshot,
    )
