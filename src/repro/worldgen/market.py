"""The provider market: every hosting/DNS organization in the world.

Seeds the named providers from :mod:`repro.datasets.providers` and
fabricates the long tail — per-country regional providers and the pool
of small global providers — with deterministic names.  Providers are
identities only at this stage; ASes, prefixes, and zones are attached
during world materialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.countries import COUNTRIES, country
from ..datasets.providers import (
    GLOBAL_DNS_SEEDS,
    GLOBAL_HOSTING_SEEDS,
    NAMED_REGIONAL_SEEDS,
    ProviderSeed,
)

__all__ = ["Provider", "ProviderMarket"]


@dataclass(frozen=True, slots=True)
class Provider:
    """One hosting/DNS organization."""

    name: str
    home_country: str
    anycast: bool = False
    offers_hosting: bool = True
    offers_dns: bool = True
    seeded_tier: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("provider name must be nonempty")


# Deterministic syllables for fabricated regional provider brands.
_SYLLABLES = (
    "net", "web", "data", "host", "tele", "cloud", "serv", "link",
    "digi", "core", "byte", "grid", "nova", "zone", "wire", "peak",
)


def _brand(cc: str, index: int) -> str:
    """A deterministic, readable brand name for a fabricated provider."""
    a = _SYLLABLES[(index * 7 + ord(cc[0])) % len(_SYLLABLES)]
    b = _SYLLABLES[(index * 13 + ord(cc[1])) % len(_SYLLABLES)]
    return f"{a.capitalize()}{b} {cc}"


class ProviderMarket:
    """Registry of all providers with per-country pools.

    Pools
    -----
    * ``global_seeds`` — the named hyperscalers and managed DNS.
    * ``small_global_pool`` — ~110 fabricated US/EU-headquartered
      providers that pick up small shares in many countries (they
      become the M-GP/S-GP classes).
    * per-country ``local_large`` / ``local_small`` pools — named +
      fabricated regional providers.
    * ``tail_provider(cc, i)`` — on-demand extra-small regional
      providers (the XS-RP long tail).
    """

    SMALL_GLOBAL_POOL_SIZE = 110

    def __init__(self) -> None:
        self._providers: dict[str, Provider] = {}
        self._local_large: dict[str, list[Provider]] = {}
        self._local_small: dict[str, list[Provider]] = {}
        self._local_dns: dict[str, list[Provider]] = {}
        self._small_global: list[Provider] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add(self, provider: Provider) -> Provider:
        existing = self._providers.get(provider.name)
        if existing is not None:
            return existing
        self._providers[provider.name] = provider
        return provider

    def _add_seed(self, seed: ProviderSeed, dns_only: bool = False) -> Provider:
        return self._add(
            Provider(
                name=seed.name,
                home_country=seed.home_country,
                anycast=seed.anycast,
                offers_hosting=not dns_only,
                offers_dns=seed.offers_dns,
                seeded_tier=seed.tier,
            )
        )

    def _build(self) -> None:
        for seed in GLOBAL_HOSTING_SEEDS:
            self._add_seed(seed)
        for seed in GLOBAL_DNS_SEEDS:
            self._add_seed(seed, dns_only=True)
        for seed in NAMED_REGIONAL_SEEDS:
            provider = self._add_seed(seed)
            home = provider.home_country
            if home in COUNTRIES:
                pool = (
                    self._local_large
                    if seed.tier == "L-RP"
                    else self._local_small
                )
                pool.setdefault(home, []).append(provider)

        # Fabricated small-global providers, HQ'd mostly in the US with
        # some in Western Europe (mirrors the real market).
        hq_cycle = ("US", "US", "US", "US", "DE", "NL", "GB", "US", "FR", "US")
        for i in range(self.SMALL_GLOBAL_POOL_SIZE):
            hq = hq_cycle[i % len(hq_cycle)]
            provider = self._add(
                Provider(
                    name=f"GlobalEdge {i:03d}",
                    home_country=hq,
                    seeded_tier=None,
                )
            )
            self._small_global.append(provider)

        # Per-country regional pools.
        for cc in COUNTRIES:
            name = country(cc).name
            large = self._local_large.setdefault(cc, [])
            while len(large) < 4:
                idx = len(large)
                label = (
                    f"{name} Hosting"
                    if idx == 0
                    else f"{name} Telecom"
                    if idx == 1
                    else _brand(cc, idx)
                )
                large.append(
                    self._add(Provider(name=label, home_country=cc))
                )
            small = self._local_small.setdefault(cc, [])
            while len(small) < 6:
                small.append(
                    self._add(
                        Provider(
                            name=_brand(cc, 10 + len(small)),
                            home_country=cc,
                        )
                    )
                )
            dns = self._local_dns.setdefault(cc, [])
            while len(dns) < 3:
                dns.append(
                    self._add(
                        Provider(
                            name=f"{_brand(cc, 20 + len(dns))} DNS",
                            home_country=cc,
                            offers_hosting=False,
                        )
                    )
                )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def provider(self, name: str) -> Provider:
        """Provider by exact name (raises KeyError if absent)."""
        return self._providers[name]

    def get(self, name: str) -> Provider | None:
        """Provider by name, or None."""
        return self._providers.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    def all_providers(self) -> list[Provider]:
        """Every provider in the market."""
        return list(self._providers.values())

    def home_country_of(self, name: str) -> str | None:
        """A provider's home country (None if unknown)."""
        provider = self._providers.get(name)
        return provider.home_country if provider else None

    def local_large(self, cc: str) -> list[Provider]:
        """Large regional providers headquartered in a country."""
        return list(self._local_large.get(cc, ()))

    def local_small(self, cc: str) -> list[Provider]:
        """Small regional providers headquartered in a country."""
        return list(self._local_small.get(cc, ()))

    def local_dns(self, cc: str) -> list[Provider]:
        """DNS-only regional operators (registrars etc.)."""
        return list(self._local_dns.get(cc, ()))

    def small_global(self) -> list[Provider]:
        """The fabricated small-global provider pool."""
        return list(self._small_global)

    def tail_provider(self, cc: str, index: int) -> Provider:
        """The ``index``-th extra-small regional provider of a country.

        Created on demand; repeated calls return the same identity.
        """
        name = f"{cc} Webhost {index:04d}"
        existing = self._providers.get(name)
        if existing is not None:
            return existing
        return self._add(Provider(name=name, home_country=cc))
