"""Core statistical toolkit: the paper's primary contribution.

This subpackage is self-contained (no dependence on the simulation
substrates) so downstream users can apply the metrics to their own
measurement data:

* :mod:`repro.core.distributions` — observed provider distributions.
* :mod:`repro.core.emd` — Earth Mover's Distance, generic and closed form.
* :mod:`repro.core.centralization` — the Centralization Score ``S``.
* :mod:`repro.core.divergences` — the rejected f-divergences and other IPMs.
* :mod:`repro.core.regionalization` — usage, endemicity, insularity.
* :mod:`repro.core.classification` — provider classes via affinity propagation.
* :mod:`repro.core.correlation` — Pearson/Spearman/Jaccard helpers.
* :mod:`repro.core.reference` — synthetic distribution families.
"""

from .centralization import (
    ConcentrationBand,
    centralization_score,
    effective_providers,
    gini,
    hhi,
    interpret_score,
    lorenz_curve,
    normalized_hhi,
    score_upper_bound,
    top_n_share,
)
from .classification import (
    GLOBAL_CLASSES,
    REGIONAL_CLASSES,
    ClassificationResult,
    ClassThresholds,
    ProviderClass,
    ProviderFeatures,
    affinity_propagation,
    classify_providers,
    min_max_scale,
)
from .correlation import (
    CorrelationResult,
    CorrelationStrength,
    interpret_correlation,
    jaccard_index,
    pearson,
    spearman,
)
from .distributions import ProviderDistribution
from .divergences import (
    disjoint_support_saturation,
    dudley_metric,
    hellinger_distance,
    js_divergence,
    kl_divergence,
    mmd,
    total_variation,
)
from .emd import (
    EmdResult,
    decentralized_reference,
    emd,
    emd_to_decentralized,
    pairwise_emd,
    paper_ground_distance_matrix,
    rank_share_distance_matrix,
)
from .reference import (
    FIGURE3_SCORES,
    allocate_counts,
    distribution_with_score,
    geometric_distribution,
    single_provider_distribution,
    uniform_distribution,
    zipf_distribution,
)
from .regionalization import (
    UsageCurve,
    dependence_on,
    endemicity,
    endemicity_ratio,
    insularity,
    usage,
)

__all__ = [
    # distributions
    "ProviderDistribution",
    # emd
    "EmdResult",
    "emd",
    "emd_to_decentralized",
    "decentralized_reference",
    "paper_ground_distance_matrix",
    "pairwise_emd",
    "rank_share_distance_matrix",
    # centralization
    "centralization_score",
    "hhi",
    "normalized_hhi",
    "effective_providers",
    "gini",
    "lorenz_curve",
    "score_upper_bound",
    "top_n_share",
    "ConcentrationBand",
    "interpret_score",
    # divergences
    "kl_divergence",
    "js_divergence",
    "hellinger_distance",
    "total_variation",
    "mmd",
    "dudley_metric",
    "disjoint_support_saturation",
    # regionalization
    "UsageCurve",
    "usage",
    "endemicity",
    "endemicity_ratio",
    "insularity",
    "dependence_on",
    # classification
    "ProviderClass",
    "ProviderFeatures",
    "ClassThresholds",
    "ClassificationResult",
    "classify_providers",
    "affinity_propagation",
    "min_max_scale",
    "GLOBAL_CLASSES",
    "REGIONAL_CLASSES",
    # correlation
    "CorrelationResult",
    "CorrelationStrength",
    "pearson",
    "spearman",
    "interpret_correlation",
    "jaccard_index",
    # reference families
    "FIGURE3_SCORES",
    "allocate_counts",
    "geometric_distribution",
    "zipf_distribution",
    "uniform_distribution",
    "single_provider_distribution",
    "distribution_with_score",
]
