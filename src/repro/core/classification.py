"""Provider classification: clustering providers by scale and reach.

Section 5.2 of the paper classifies providers by computing each
provider's usage ``U`` and endemicity ratio ``E_R``, min–max scaling the
two features, clustering with affinity propagation, and manually mapping
the resulting clusters onto 8 named classes (Table 1):

======== =======================================
XL-GP    Extra Large Global (Cloudflare, Amazon)
L-GP     Large Global (Akamai, Google, ...)
L-GP (R) Large Global with regional skew (OVH)
M-GP     Medium Global
S-GP     Small Global
L-RP     Large Regional (Alibaba, Beget, ...)
S-RP     Small Regional
XS-RP    Extra Small Regional (long tail)
======== =======================================

scikit-learn is not a dependency, so affinity propagation (Frey & Dueck,
*Science* 2007) is implemented here from scratch with numpy.  The manual
cluster→class mapping step is codified as a rule table on cluster
centroids (:class:`ClassThresholds`), which reproduces the paper's
eight-way taxonomy deterministically.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from ..errors import EmptyDistributionError, InvalidDistributionError

__all__ = [
    "ProviderClass",
    "ProviderFeatures",
    "ClassThresholds",
    "ClassificationResult",
    "min_max_scale",
    "affinity_propagation",
    "classify_providers",
    "GLOBAL_CLASSES",
    "REGIONAL_CLASSES",
]


class ProviderClass(enum.Enum):
    """The paper's eight provider classes (Table 1)."""

    XL_GP = "XL-GP"
    L_GP = "L-GP"
    L_GP_R = "L-GP (R)"
    M_GP = "M-GP"
    S_GP = "S-GP"
    L_RP = "L-RP"
    S_RP = "S-RP"
    XS_RP = "XS-RP"

    @property
    def is_global(self) -> bool:
        """True for the global provider classes."""
        return self in GLOBAL_CLASSES

    @property
    def is_regional(self) -> bool:
        """True for the regional provider classes."""
        return self in REGIONAL_CLASSES


GLOBAL_CLASSES = frozenset(
    {
        ProviderClass.XL_GP,
        ProviderClass.L_GP,
        ProviderClass.L_GP_R,
        ProviderClass.M_GP,
        ProviderClass.S_GP,
    }
)
REGIONAL_CLASSES = frozenset(
    {ProviderClass.L_RP, ProviderClass.S_RP, ProviderClass.XS_RP}
)


@dataclass(frozen=True, slots=True)
class ProviderFeatures:
    """The two classification features for one provider."""

    usage: float
    endemicity_ratio: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.usage) or self.usage < 0:
            raise InvalidDistributionError(
                f"usage must be nonnegative, got {self.usage!r}"
            )
        if not 0.0 <= self.endemicity_ratio <= 1.0:
            raise InvalidDistributionError(
                f"endemicity ratio must be in [0, 1], "
                f"got {self.endemicity_ratio!r}"
            )


@dataclass(frozen=True, slots=True)
class ClassThresholds:
    """Rule table turning cluster centroids into provider classes.

    The endemicity-ratio cuts separate global from regional providers
    (a provider present in only one of 150 countries has
    ``E_R = 1 - 1/150 ≈ 0.993``, so the regional cut sits just below
    that plateau); the usage cuts set the size tiers.  Usage is measured
    as the sum of per-country percentages, so its ceiling is
    ``100 * n_countries``.
    """

    regional_er: float = 0.945
    global_skewed_er: float = 0.82
    xl_global_usage: float = 900.0
    l_global_usage: float = 110.0
    m_global_usage: float = 23.0
    l_regional_usage: float = 6.0
    s_regional_usage: float = 0.8

    #: Country count the default thresholds were tuned for.
    REFERENCE_COUNTRIES: ClassVar[int] = 150

    @classmethod
    def scaled_for(cls, n_countries: int) -> "ClassThresholds":
        """Thresholds adapted to a study with fewer/more countries.

        Usage is a sum of per-country percentages, so the size cuts
        scale linearly with the country count.  The endemicity-ratio
        cuts are scale-free for broadly present providers, but the
        single-country plateau sits at ``1 - 1/n``, so the regional cut
        is capped just below it for small studies.
        """
        if n_countries <= 0:
            raise InvalidDistributionError(
                f"n_countries must be positive, got {n_countries}"
            )
        base = cls()
        factor = n_countries / cls.REFERENCE_COUNTRIES
        regional_cap = 1.0 - 1.2 / n_countries
        return cls(
            regional_er=min(base.regional_er, regional_cap),
            global_skewed_er=min(
                base.global_skewed_er, regional_cap - 0.05
            ),
            xl_global_usage=base.xl_global_usage * factor,
            l_global_usage=base.l_global_usage * factor,
            m_global_usage=base.m_global_usage * factor,
            l_regional_usage=base.l_regional_usage * factor,
            s_regional_usage=base.s_regional_usage * factor,
        )

    def classify(self, features: ProviderFeatures) -> ProviderClass:
        """Assign one provider class from (usage, endemicity ratio)."""
        u, er = features.usage, features.endemicity_ratio
        if er >= self.regional_er:
            if u >= self.l_regional_usage:
                return ProviderClass.L_RP
            if u >= self.s_regional_usage:
                return ProviderClass.S_RP
            return ProviderClass.XS_RP
        if u >= self.xl_global_usage:
            return ProviderClass.XL_GP
        if u >= self.l_global_usage:
            if er >= self.global_skewed_er:
                return ProviderClass.L_GP_R
            return ProviderClass.L_GP
        if u >= self.m_global_usage:
            return ProviderClass.M_GP
        return ProviderClass.S_GP


@dataclass(frozen=True, slots=True)
class ClassificationResult:
    """Clustering + labeling outcome for a set of providers."""

    labels: dict[str, ProviderClass]
    cluster_of: dict[str, int]
    n_clusters: int
    exemplars: dict[int, str]
    features: dict[str, ProviderFeatures] = field(repr=False)

    def members(self, cls: ProviderClass) -> list[str]:
        """Providers assigned to a class, largest usage first."""
        named = [p for p, c in self.labels.items() if c is cls]
        return sorted(named, key=lambda p: -self.features[p].usage)

    def class_counts(self) -> dict[ProviderClass, int]:
        """Number of providers per class (the Tables 1–3 counts)."""
        counts = {cls: 0 for cls in ProviderClass}
        for cls in self.labels.values():
            counts[cls] += 1
        return counts


def min_max_scale(values: np.ndarray) -> np.ndarray:
    """Column-wise min–max scaling to [0, 1] (constant columns -> 0)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise InvalidDistributionError("expected a 2-D feature matrix")
    lo = values.min(axis=0)
    hi = values.max(axis=0)
    span = hi - lo
    scaled = np.zeros_like(values)
    nonconstant = span > 0
    scaled[:, nonconstant] = (
        values[:, nonconstant] - lo[nonconstant]
    ) / span[nonconstant]
    return scaled


def affinity_propagation(
    points: np.ndarray,
    *,
    damping: float = 0.8,
    max_iter: int = 400,
    convergence_iter: int = 30,
    preference: float | None = None,
    random_state: int = 0,
) -> np.ndarray:
    """Affinity propagation clustering (Frey & Dueck 2007), from scratch.

    Parameters
    ----------
    points:
        ``(n, d)`` feature matrix.
    damping:
        Message damping factor in ``[0.5, 1)``.
    preference:
        Self-similarity; defaults to the median pairwise similarity
        (the standard choice, yielding a moderate cluster count).

    Returns
    -------
    numpy.ndarray
        Integer cluster labels of length ``n`` (labels are indices into
        the exemplar list, 0-based and contiguous).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise EmptyDistributionError("points must be a nonempty (n, d) array")
    if not 0.5 <= damping < 1.0:
        raise ValueError(f"damping must be in [0.5, 1), got {damping}")

    # Duplicate points carry no clustering information but degrade the
    # similarity statistics (the median self-preference explodes);
    # cluster the unique rows and broadcast labels back.
    unique_points, inverse = np.unique(points, axis=0, return_inverse=True)
    if unique_points.shape[0] < points.shape[0]:
        unique_labels = affinity_propagation(
            unique_points,
            damping=damping,
            max_iter=max_iter,
            convergence_iter=convergence_iter,
            preference=preference,
            random_state=random_state,
        )
        return unique_labels[inverse]

    n = points.shape[0]
    if n == 1:
        return np.zeros(1, dtype=int)

    # Negative squared Euclidean similarity.
    sq = np.sum(points**2, axis=1)
    similarity = -(sq[:, None] + sq[None, :] - 2.0 * points @ points.T)
    if preference is None:
        off_diag = similarity[~np.eye(n, dtype=bool)]
        preference = float(np.median(off_diag))
    np.fill_diagonal(similarity, preference)

    # Tiny deterministic jitter breaks ties (degenerate duplicate points).
    rng = np.random.default_rng(random_state)
    scale = max(abs(similarity).max(), 1e-12)
    similarity = similarity + 1e-9 * scale * rng.standard_normal((n, n))

    responsibility = np.zeros((n, n))
    availability = np.zeros((n, n))
    stable_for = 0
    last_exemplars: np.ndarray | None = None

    for _ in range(max_iter):
        # Responsibilities.
        combined = availability + similarity
        idx_max = np.argmax(combined, axis=1)
        row_max = combined[np.arange(n), idx_max]
        combined[np.arange(n), idx_max] = -np.inf
        row_second = combined.max(axis=1)
        new_resp = similarity - row_max[:, None]
        new_resp[np.arange(n), idx_max] = (
            similarity[np.arange(n), idx_max] - row_second
        )
        responsibility = (
            damping * responsibility + (1.0 - damping) * new_resp
        )

        # Availabilities.
        clipped = np.maximum(responsibility, 0.0)
        np.fill_diagonal(clipped, np.diag(responsibility))
        col_sums = clipped.sum(axis=0)
        new_avail = np.minimum(0.0, col_sums[None, :] - clipped)
        # a(k,k) = sum_{i' != k} max(0, r(i',k)); col_sums includes the
        # unclipped r(k,k), which must come back out exactly once.
        diag = col_sums - np.diag(responsibility)
        np.fill_diagonal(new_avail, diag)
        availability = damping * availability + (1.0 - damping) * new_avail

        exemplars = np.flatnonzero(
            np.diag(availability + responsibility) > 0
        )
        if last_exemplars is not None and np.array_equal(
            exemplars, last_exemplars
        ):
            stable_for += 1
            if stable_for >= convergence_iter and exemplars.size > 0:
                break
        else:
            stable_for = 0
        last_exemplars = exemplars

    exemplars = np.flatnonzero(np.diag(availability + responsibility) > 0)
    if exemplars.size == 0:
        # Degenerate fall-back: everything in one cluster.
        return np.zeros(n, dtype=int)
    assignment = np.argmax(similarity[:, exemplars], axis=1)
    assignment[exemplars] = np.arange(exemplars.size)
    return assignment


def classify_providers(
    features: Mapping[str, ProviderFeatures],
    *,
    thresholds: ClassThresholds | None = None,
    damping: float = 0.8,
    max_cluster_points: int = 2500,
    quantize_decimals: int = 3,
    random_state: int = 0,
) -> ClassificationResult:
    """Cluster providers on (usage, endemicity ratio) and label classes.

    Follows the paper's recipe: min–max scale the two features, cluster
    with affinity propagation, then map each cluster to a provider class
    by applying the :class:`ClassThresholds` rule table to the cluster's
    usage-weighted centroid (codifying the paper's manual step).

    Affinity propagation is O(n^2) memory, and the long tail of
    extra-small regional providers is feature-degenerate (thousands of
    providers share usage ≈ a few hundredths and ``E_R ≈ 0.993``), so
    points are quantized to ``quantize_decimals`` in scaled space and
    clustering runs on the unique quantized points.  If the unique count
    still exceeds ``max_cluster_points`` the grid is coarsened.
    """
    if not features:
        raise EmptyDistributionError("no providers to classify")
    thresholds = thresholds or ClassThresholds()
    providers = sorted(features)
    raw = np.array(
        [
            [features[p].usage, features[p].endemicity_ratio]
            for p in providers
        ],
        dtype=float,
    )
    scaled = min_max_scale(raw)

    decimals = quantize_decimals
    while True:
        quantized = np.round(scaled, decimals)
        unique_points, inverse = np.unique(
            quantized, axis=0, return_inverse=True
        )
        if unique_points.shape[0] <= max_cluster_points or decimals <= 1:
            break
        decimals -= 1

    unique_labels = affinity_propagation(
        unique_points, damping=damping, random_state=random_state
    )
    labels = unique_labels[inverse]

    # Relabel clusters contiguously.
    unique_clusters, labels = np.unique(labels, return_inverse=True)
    n_clusters = unique_clusters.size

    cluster_of = {p: int(labels[i]) for i, p in enumerate(providers)}
    classes: dict[str, ProviderClass] = {}
    exemplars: dict[int, str] = {}
    for cluster in range(n_clusters):
        member_idx = np.flatnonzero(labels == cluster)
        member_usage = raw[member_idx, 0]
        weights = member_usage + 1e-12
        centroid = ProviderFeatures(
            usage=float(
                np.average(raw[member_idx, 0], weights=weights)
            ),
            endemicity_ratio=float(
                np.clip(
                    np.average(raw[member_idx, 1], weights=weights),
                    0.0,
                    1.0,
                )
            ),
        )
        cluster_class = thresholds.classify(centroid)
        biggest = member_idx[np.argmax(member_usage)]
        exemplars[cluster] = providers[biggest]
        for i in member_idx:
            classes[providers[i]] = cluster_class

    # Clusters group similar providers, but the named size tiers are
    # defined on the provider's own features; re-split any cluster whose
    # members straddle a threshold (this mirrors the paper's manual
    # examination, which mapped 305 clusters onto 8 classes).
    for i, provider in enumerate(providers):
        own_class = thresholds.classify(
            ProviderFeatures(usage=raw[i, 0], endemicity_ratio=raw[i, 1])
        )
        cluster_class = classes[provider]
        if own_class is not cluster_class:
            classes[provider] = own_class

    return ClassificationResult(
        labels=classes,
        cluster_of=cluster_of,
        n_clusters=n_clusters,
        exemplars=exemplars,
        features=dict(features),
    )
