"""Synthetic reference distributions for intuition and calibration.

Figure 3 of the paper aids interpretation of ``S`` with a family of
synthetic cumulative curves (S = 0.818, 0.481, 0.25, 0.111, 0.026,
0.005, 0.001 at C = 10,000).  A geometric share family reproduces those
values exactly in the large-``C`` limit: if provider ``k`` holds share
``p (1-p)^k`` then ``HHI = p / (2 - p)``, so a target score ``S`` maps
to ``p = 2S / (1 + S)``.  This module provides those generators plus the
Zipf/uniform/single-provider families used by tests and by the world
generator's calibration.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import EmptyDistributionError, InvalidDistributionError
from .distributions import ProviderDistribution

__all__ = [
    "allocate_counts",
    "geometric_distribution",
    "zipf_distribution",
    "uniform_distribution",
    "single_provider_distribution",
    "distribution_with_score",
    "FIGURE3_SCORES",
]

#: The example S values plotted in Figure 3.
FIGURE3_SCORES: tuple[float, ...] = (
    0.818,
    0.481,
    0.25,
    0.111,
    0.026,
    0.005,
    0.001,
)


def allocate_counts(shares: Sequence[float] | np.ndarray, total: int) -> np.ndarray:
    """Turn fractional shares into integer counts summing to ``total``.

    Largest-remainder (Hamilton) apportionment: each share gets its
    floor, and the leftover units go to the largest fractional parts.
    Zero-count providers are dropped by callers as needed.
    """
    if total <= 0:
        raise EmptyDistributionError("total must be positive")
    shares = np.asarray(shares, dtype=float)
    if shares.ndim != 1 or shares.size == 0:
        raise EmptyDistributionError("shares must be nonempty and 1-D")
    if np.any(shares < 0) or not np.all(np.isfinite(shares)):
        raise InvalidDistributionError("shares must be nonnegative and finite")
    mass = shares.sum()
    if mass <= 0:
        raise EmptyDistributionError("shares sum to zero")
    exact = shares / mass * total
    counts = np.floor(exact).astype(int)
    remainder = total - int(counts.sum())
    if remainder > 0:
        order = np.argsort(-(exact - counts), kind="stable")
        counts[order[:remainder]] += 1
    return counts


def geometric_distribution(
    p: float, total: int = 10_000, prefix: str = "provider"
) -> ProviderDistribution:
    """Counts following the geometric share family ``p (1-p)^k``.

    The tail is truncated once expected counts fall below one website;
    any residual mass is swept into single-site providers so that the
    total is exactly ``total`` (matching the decentralized long tail of
    real toplists).
    """
    if not 0.0 < p <= 1.0:
        raise InvalidDistributionError(f"p must be in (0, 1], got {p}")
    shares: list[float] = []
    share = p
    while share * total >= 0.5 and len(shares) < total:
        shares.append(share)
        share *= 1.0 - p
        if share <= 0.0:
            break
    head_mass = sum(shares)
    head_total = int(round(head_mass * total))
    head_total = min(head_total, total)
    counts: dict[str, float] = {}
    if head_total > 0 and shares:
        allocated = allocate_counts(np.array(shares), head_total)
        for i, count in enumerate(allocated):
            if count > 0:
                counts[f"{prefix}-{i}"] = float(count)
    # Residual mass becomes the fully decentralized tail.
    assigned = int(sum(counts.values()))
    for j in range(total - assigned):
        counts[f"{prefix}-tail-{j}"] = 1.0
    return ProviderDistribution(counts)


def zipf_distribution(
    exponent: float,
    n_providers: int,
    total: int = 10_000,
    prefix: str = "provider",
) -> ProviderDistribution:
    """Counts following a Zipf law ``share_k ∝ k^(-exponent)``."""
    if n_providers <= 0:
        raise EmptyDistributionError("need at least one provider")
    if exponent < 0:
        raise InvalidDistributionError(
            f"exponent must be nonnegative, got {exponent}"
        )
    ranks = np.arange(1, n_providers + 1, dtype=float)
    counts = allocate_counts(ranks**-exponent, total)
    return ProviderDistribution(
        {
            f"{prefix}-{i}": float(c)
            for i, c in enumerate(counts)
            if c > 0
        }
    )


def uniform_distribution(
    n_providers: int, total: int = 10_000, prefix: str = "provider"
) -> ProviderDistribution:
    """``total`` websites spread as evenly as possible over providers."""
    counts = allocate_counts(np.ones(n_providers), total)
    return ProviderDistribution(
        {
            f"{prefix}-{i}": float(c)
            for i, c in enumerate(counts)
            if c > 0
        }
    )


def single_provider_distribution(
    total: int = 10_000, name: str = "monopoly"
) -> ProviderDistribution:
    """The maximally centralized case: one provider serves everything."""
    if total <= 0:
        raise EmptyDistributionError("total must be positive")
    return ProviderDistribution({name: float(total)})


def distribution_with_score(
    target: float, total: int = 10_000, prefix: str = "provider"
) -> ProviderDistribution:
    """Generate a distribution whose ``S`` approximates ``target``.

    Uses the geometric family's closed-form inverse ``p = 2S / (1 + S)``
    (exact in the continuum limit; integer rounding introduces error on
    the order of ``1/total``).  Raises if the target exceeds the
    attainable bound ``1 - 1/total``.
    """
    if not 0.0 <= target < 1.0:
        raise InvalidDistributionError(
            f"target score must be in [0, 1), got {target}"
        )
    bound = 1.0 - 1.0 / total
    if target > bound:
        raise InvalidDistributionError(
            f"target {target} exceeds the bound {bound} for C={total}"
        )
    if target == 0.0:
        return uniform_distribution(total, total, prefix=prefix)
    p = 2.0 * target / (1.0 + target)
    return geometric_distribution(p, total, prefix=prefix)


def _geometric_hhi(p: float) -> float:
    """Closed-form HHI of the (untruncated) geometric family."""
    return p / (2.0 - p)


def score_of_geometric(p: float) -> float:
    """Large-``C`` limit of ``S`` for the geometric family (== HHI)."""
    if not 0.0 < p <= 1.0:
        raise InvalidDistributionError(f"p must be in (0, 1], got {p}")
    return _geometric_hhi(p)
