"""Earth Mover's Distance (Wasserstein distance) machinery.

This module implements the statistical core of the paper in three forms:

1. :func:`emd` — the fully general discrete EMD of Appendix A: given two
   piles of mass and an arbitrary ground-distance matrix, solve the
   transportation linear program exactly (scipy's HiGHS solver) and
   return the minimum work and the optimal flow.
2. :func:`emd_to_decentralized` — the paper's instantiation: the
   reference distribution is the fully decentralized one (every website
   on its own provider) with the vertical-difference ground distance
   ``d_ij = (a_i - 1) / C``.  Because the distance does not depend on
   ``j``, the optimal flow is trivial and the EMD has the closed form

   .. math:: S = \\sum_i (a_i / C)^2 - 1/C

   derived in Appendix A.  The generic LP and this closed form agree;
   a property-based test in ``tests/core/test_emd.py`` checks that.
3. :func:`pairwise_emd` — the "future work" customization from
   Section 3.2: compare two observed country distributions directly
   (shape-to-shape) rather than against the decentralized reference.

The transportation LP is exponentially sized in ``C`` for the paper's
reference distribution (10,000 buckets), so :func:`emd_to_decentralized`
defaults to the closed form and only runs the LP when explicitly asked
(for validation at small sizes).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..errors import EmptyDistributionError, InvalidDistributionError
from .distributions import ProviderDistribution

__all__ = [
    "EmdResult",
    "emd",
    "emd_to_decentralized",
    "decentralized_reference",
    "paper_ground_distance_matrix",
    "pairwise_emd",
    "rank_share_distance_matrix",
]


@dataclass(frozen=True, slots=True)
class EmdResult:
    """Outcome of an exact EMD computation.

    Attributes
    ----------
    work:
        Total transport work ``sum_ij f_ij * d_ij`` of the optimal flow.
    normalized:
        Work divided by total flow — the EMD value on the ``[0, 1]``
        scale when all ground distances are in ``[0, 1]``.
    flow:
        The optimal flow matrix ``f_ij`` (rows: source piles, columns:
        destination piles).
    """

    work: float
    normalized: float
    flow: np.ndarray


def _validate_masses(masses: np.ndarray, name: str) -> np.ndarray:
    masses = np.asarray(masses, dtype=float)
    if masses.ndim != 1 or masses.size == 0:
        raise EmptyDistributionError(f"{name} must be a nonempty 1-D array")
    if not np.all(np.isfinite(masses)) or np.any(masses < 0):
        raise InvalidDistributionError(
            f"{name} must contain nonnegative finite masses"
        )
    if masses.sum() <= 0:
        raise EmptyDistributionError(f"{name} has zero total mass")
    return masses


def emd(
    source: Sequence[float] | np.ndarray,
    target: Sequence[float] | np.ndarray,
    distance: np.ndarray,
) -> EmdResult:
    """Solve the discrete transportation problem exactly.

    Parameters
    ----------
    source, target:
        Nonnegative masses; their totals must match (up to a relative
        tolerance of 1e-9), matching Appendix A's simplifying assumption
        ``sum a_i == sum r_j``.
    distance:
        Ground distance matrix of shape ``(len(source), len(target))``.

    Returns
    -------
    EmdResult
        Minimum work, normalized EMD, and the optimal flow.
    """
    a = _validate_masses(np.asarray(source), "source")
    r = _validate_masses(np.asarray(target), "target")
    d = np.asarray(distance, dtype=float)
    if d.shape != (a.size, r.size):
        raise InvalidDistributionError(
            f"distance matrix shape {d.shape} does not match "
            f"({a.size}, {r.size})"
        )
    if not np.isclose(a.sum(), r.sum(), rtol=1e-9):
        raise InvalidDistributionError(
            f"total source mass {a.sum()} != total target mass {r.sum()}"
        )

    n, m = a.size, r.size
    # Row constraints: sum_j f_ij == a_i; column constraints: sum_i f_ij == r_j.
    # One constraint is redundant (totals match) but HiGHS copes fine.
    row_idx = np.repeat(np.arange(n), m)
    col_idx = np.tile(np.arange(m), n)
    n_vars = n * m

    a_eq = np.zeros((n + m, n_vars))
    a_eq[row_idx, np.arange(n_vars)] = 1.0
    a_eq[n + col_idx, np.arange(n_vars)] = 1.0
    b_eq = np.concatenate([a, r])

    result = linprog(
        c=d.ravel(),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise InvalidDistributionError(
            f"transportation LP failed: {result.message}"
        )
    flow = result.x.reshape(n, m)
    work = float(result.fun)
    return EmdResult(work=work, normalized=work / float(a.sum()), flow=flow)


def decentralized_reference(total: float) -> np.ndarray:
    """The fully decentralized reference distribution ``R``.

    ``C`` buckets each holding exactly one website.  ``total`` must be a
    whole number of websites (the reference is defined per-website).
    """
    count = int(round(total))
    if count <= 0:
        raise EmptyDistributionError("reference needs at least one website")
    if abs(total - count) > 1e-9:
        raise InvalidDistributionError(
            f"decentralized reference requires an integer site count, "
            f"got {total}"
        )
    return np.ones(count, dtype=float)


def paper_ground_distance_matrix(
    counts: Sequence[float] | np.ndarray, total: float | None = None
) -> np.ndarray:
    """The paper's ground distance ``d_ij = (a_i - 1) / C``.

    The distance a website must "travel" from provider ``i`` toward any
    unit bucket of the decentralized reference: the vertical height
    difference between ``a_i`` and 1, normalized by the total number of
    sites.  Independent of ``j`` by construction.
    """
    a = _validate_masses(np.asarray(counts), "counts")
    c = float(a.sum()) if total is None else float(total)
    column = (a - 1.0) / c
    return np.repeat(column[:, None], int(round(c)), axis=1)


def emd_to_decentralized(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
    *,
    method: str = "closed-form",
) -> float:
    """EMD from an observed distribution to the decentralized reference.

    This is the paper's Centralization Score ``S`` (Section 3.2).

    Parameters
    ----------
    distribution:
        A :class:`ProviderDistribution` or raw count sequence.
    method:
        ``"closed-form"`` (default) evaluates ``sum (a_i/C)^2 - 1/C``
        directly.  ``"lp"`` materializes the full reference and solves
        the transportation LP — exponentially bigger, intended only for
        validating the closed form at small ``C``.
    """
    if isinstance(distribution, ProviderDistribution):
        counts = distribution.counts()
    else:
        counts = _validate_masses(np.asarray(distribution), "distribution")
    c = counts.sum()

    if method == "closed-form":
        shares = counts / c
        return float(np.dot(shares, shares) - 1.0 / c)
    if method == "lp":
        reference = decentralized_reference(c)
        distance = paper_ground_distance_matrix(counts, c)
        result = emd(counts, reference, distance)
        return result.normalized
    raise ValueError(f"unknown method {method!r}; use 'closed-form' or 'lp'")


def rank_share_distance_matrix(n: int, m: int) -> np.ndarray:
    """A simple rank-difference ground distance for pairwise comparisons.

    ``d_ij = |i/n - j/m|``: how far apart two provider *ranks* are on a
    normalized rank axis.  A reasonable default for the Section 3.2
    extension of comparing two countries' shapes directly.
    """
    if n <= 0 or m <= 0:
        raise ValueError("distance matrix dimensions must be positive")
    i = np.arange(n, dtype=float)[:, None] / n
    j = np.arange(m, dtype=float)[None, :] / m
    return np.abs(i - j)


def pairwise_emd(
    left: ProviderDistribution,
    right: ProviderDistribution,
    distance: np.ndarray | None = None,
    ground_distance: Callable[[int, int, int, int], float] | None = None,
) -> EmdResult:
    """Compare two observed country distributions directly.

    Shares (not raw counts) are transported so that countries with
    different toplist lengths remain comparable.  By default the
    rank-share ground distance is used; callers can pass either a full
    ``distance`` matrix or a ``ground_distance(i, n, j, m)`` callable.
    """
    a = left.shares()
    r = right.shares()
    if distance is None:
        if ground_distance is None:
            distance = rank_share_distance_matrix(a.size, r.size)
        else:
            distance = np.array(
                [
                    [ground_distance(i, a.size, j, r.size) for j in range(r.size)]
                    for i in range(a.size)
                ],
                dtype=float,
            )
    return emd(a, r, distance)
