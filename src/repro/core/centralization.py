"""The Centralization Score ``S`` and baseline concentration measures.

``S`` formalizes centralization as the Earth Mover's Distance between an
observed provider distribution and a fully decentralized reference
distribution (Section 3.2):

.. math:: S = \\sum_i \\left(\\frac{a_i}{C}\\right)^2 - \\frac{1}{C}

which is the Herfindahl–Hirschman Index minus ``1/C``.  The module also
implements the descriptive measures from prior work (top-N share, raw
HHI) used as comparison baselines by the benchmarks, and the U.S. DOJ
concentration bands the paper suggests for interpretation.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Sequence

import numpy as np

from ..errors import EmptyDistributionError, InvalidDistributionError
from .distributions import ProviderDistribution

__all__ = [
    "centralization_score",
    "hhi",
    "score_upper_bound",
    "ConcentrationBand",
    "interpret_score",
    "top_n_share",
    "normalized_hhi",
    "effective_providers",
    "gini",
    "lorenz_curve",
]


def _counts(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
) -> np.ndarray:
    if isinstance(distribution, ProviderDistribution):
        return distribution.counts()
    counts = np.asarray(distribution, dtype=float)
    if counts.ndim != 1 or counts.size == 0:
        raise EmptyDistributionError("distribution must be nonempty and 1-D")
    if not np.all(np.isfinite(counts)) or np.any(counts < 0):
        raise InvalidDistributionError("counts must be nonnegative and finite")
    if counts.sum() <= 0:
        raise EmptyDistributionError("distribution has zero total mass")
    return counts


def centralization_score(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
) -> float:
    """The paper's Centralization Score ``S``.

    ``S`` ranges from 0 (fully decentralized: every website has its own
    provider) to ``1 - 1/C`` (one provider serves everything).  Larger
    values mean more work would be needed to "flatten" the observed
    distribution into the decentralized reference, i.e. more
    centralization.

    Examples
    --------
    >>> centralization_score([1, 1, 1, 1])  # fully decentralized
    0.0
    >>> round(centralization_score([4]), 4)  # a single provider
    0.75
    """
    counts = _counts(distribution)
    total = counts.sum()
    shares = counts / total
    return float(np.dot(shares, shares) - 1.0 / total)


def hhi(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
) -> float:
    """The Herfindahl–Hirschman Index ``sum (a_i / C)^2``.

    Equals ``centralization_score + 1/C``; exposed separately because
    antitrust practice and two prior DNS studies report raw HHI.
    """
    counts = _counts(distribution)
    shares = counts / counts.sum()
    return float(np.dot(shares, shares))


def score_upper_bound(total: float) -> float:
    """Maximum attainable ``S`` for a slice of ``total`` websites.

    Reached when a single provider serves every website; approaches 1 as
    ``C`` grows (Section 3.2).
    """
    if total <= 0:
        raise EmptyDistributionError("total must be positive")
    return 1.0 - 1.0 / float(total)


class ConcentrationBand(enum.Enum):
    """U.S. DOJ Horizontal Merger Guidelines interpretation bands.

    The paper deliberately does not define its own cutoff for
    "centralized" but points to these antitrust bands as context for how
    other fields interpret concentration values (Section 3.2).
    """

    COMPETITIVE = "competitive"
    MODERATELY_CONCENTRATED = "moderately concentrated"
    HIGHLY_CONCENTRATED = "highly concentrated"


#: DOJ band boundaries on the HHI scale used by the paper (0.10 / 0.18).
_BAND_EDGES = (0.10, 0.18)


def interpret_score(value: float) -> ConcentrationBand:
    """Map an ``S`` (or HHI) value onto the DOJ concentration bands.

    ``< 0.10`` competitive, ``0.10–0.18`` moderately concentrated,
    ``> 0.18`` highly concentrated.
    """
    if not math.isfinite(value) or value < 0:
        raise InvalidDistributionError(
            f"score must be a nonnegative finite number, got {value!r}"
        )
    if value < _BAND_EDGES[0]:
        return ConcentrationBand.COMPETITIVE
    if value <= _BAND_EDGES[1]:
        return ConcentrationBand.MODERATELY_CONCENTRATED
    return ConcentrationBand.HIGHLY_CONCENTRATED


def top_n_share(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
    n: int,
) -> float:
    """The prior-work "top-N providers' market share" heuristic.

    Captures a single point of the distribution; Figure 1 shows why it
    can be misleading (Azerbaijan vs. Hong Kong).  Kept as a baseline.
    """
    if isinstance(distribution, ProviderDistribution):
        return distribution.top_n_share(n)
    counts = _counts(distribution)
    if n < 0:
        raise ValueError(f"n must be nonnegative, got {n}")
    ordered = np.sort(counts)[::-1]
    return float(ordered[:n].sum() / counts.sum())


def normalized_hhi(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
) -> float:
    """HHI rescaled to [0, 1] by the number of *providers* ``n``.

    ``(HHI - 1/n) / (1 - 1/n)``.  This is the classical economics
    normalization; note it differs from ``S`` (which normalizes against
    the number of *websites* ``C``) and therefore does **not** satisfy
    the paper's requirement (3) of being independent of provider count.
    Included so benchmarks can contrast the two normalizations.
    """
    counts = _counts(distribution)
    n = counts.size
    if n == 1:
        return 1.0
    h = hhi(counts)
    return float((h - 1.0 / n) / (1.0 - 1.0 / n))


def effective_providers(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
) -> float:
    """Inverse-HHI "numbers equivalent": how many equal-size providers
    would produce the same concentration.

    A readable companion statistic for reports: Thailand's hosting layer
    behaves like ~3 equal providers while Iran's behaves like ~24.
    """
    return 1.0 / hhi(distribution)


def gini(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
) -> float:
    """Gini coefficient of the provider size distribution.

    An inequality baseline for the design-space comparison: unlike
    ``S``, the Gini is invariant to how much of the market the top
    providers hold *in absolute terms* — a market of two equal giants
    and a market of 10,000 equal boutiques both score 0 — so it fails
    the paper's requirement (1) of capturing provider count.  Included
    so studies can report it alongside ``S``.
    """
    counts = np.sort(_counts(distribution))
    n = counts.size
    if n == 1:
        return 0.0
    ranks = np.arange(1, n + 1)
    total = counts.sum()
    return float((2.0 * np.sum(ranks * counts)) / (n * total) - (n + 1) / n)


def lorenz_curve(
    distribution: ProviderDistribution | Sequence[float] | np.ndarray,
    points: int = 101,
) -> tuple[np.ndarray, np.ndarray]:
    """Lorenz curve of market share vs provider fraction.

    Returns ``(x, y)`` arrays where ``y[i]`` is the share of websites
    served by the smallest ``x[i]`` fraction of providers — the curve
    whose deviation from the diagonal the Gini summarizes.
    """
    if points < 2:
        raise InvalidDistributionError(
            f"lorenz curve needs at least 2 points, got {points}"
        )
    counts = np.sort(_counts(distribution))
    cumulative = np.concatenate([[0.0], np.cumsum(counts)])
    cumulative /= cumulative[-1]
    x = np.linspace(0.0, 1.0, points)
    positions = x * counts.size
    y = np.interp(positions, np.arange(counts.size + 1), cumulative)
    return x, y
