"""Correlation and set-similarity statistics used throughout the paper.

Pearson's ``rho`` (with p-values) compares rank-ordered sequences of
scores — e.g. centralization vs. XL-GP share (Section 5.2), Stanford vs.
RIPE vantage points (Section 3.4), or 2023 vs. 2025 snapshots
(Section 5.4).  Interpretation follows Akoglu's user's guide, the
guideline the paper cites: <0.30 poor, 0.30–0.60 fair, 0.60–0.80
moderate, >0.80 strong.  The Jaccard index measures toplist churn.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import InvalidDistributionError

__all__ = [
    "CorrelationStrength",
    "CorrelationResult",
    "pearson",
    "spearman",
    "interpret_correlation",
    "jaccard_index",
]


class CorrelationStrength(enum.Enum):
    """Akoglu (2018) interpretation bands for correlation coefficients."""

    POOR = "poor"
    FAIR = "fair"
    MODERATE = "moderate"
    STRONG = "strong"


def interpret_correlation(rho: float) -> CorrelationStrength:
    """Label a correlation coefficient per the paper's guidelines.

    The bands apply to the magnitude: a coefficient of -0.72 is a
    moderate (negative) correlation.
    """
    magnitude = abs(rho)
    if not math.isfinite(magnitude) or magnitude > 1 + 1e-9:
        raise InvalidDistributionError(
            f"correlation coefficient must be in [-1, 1], got {rho!r}"
        )
    if magnitude < 0.30:
        return CorrelationStrength.POOR
    if magnitude < 0.60:
        return CorrelationStrength.FAIR
    if magnitude < 0.80:
        return CorrelationStrength.MODERATE
    return CorrelationStrength.STRONG


@dataclass(frozen=True, slots=True)
class CorrelationResult:
    """A correlation coefficient with its p-value and strength band."""

    rho: float
    p_value: float
    strength: CorrelationStrength
    n: int

    @property
    def significant(self) -> bool:
        """True when p < 0.05, the paper's significance level."""
        return self.p_value < 0.05

    def __str__(self) -> str:
        p_text = "p<<0.05" if self.p_value < 1e-6 else f"p={self.p_value:.3g}"
        return f"rho={self.rho:.2f} ({p_text}, {self.strength.value}, n={self.n})"


def _paired_arrays(
    x: Sequence[float], y: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or ya.ndim != 1 or xa.size != ya.size:
        raise InvalidDistributionError(
            "correlation inputs must be 1-D sequences of equal length"
        )
    if xa.size < 3:
        raise InvalidDistributionError(
            f"need at least 3 paired observations, got {xa.size}"
        )
    if not (np.all(np.isfinite(xa)) and np.all(np.isfinite(ya))):
        raise InvalidDistributionError("correlation inputs must be finite")
    return xa, ya


def pearson(x: Sequence[float], y: Sequence[float]) -> CorrelationResult:
    """Pearson's correlation coefficient with two-sided p-value."""
    xa, ya = _paired_arrays(x, y)
    if np.ptp(xa) == 0 or np.ptp(ya) == 0:
        raise InvalidDistributionError(
            "correlation undefined for a constant sequence"
        )
    result = stats.pearsonr(xa, ya)
    rho = float(result.statistic)
    return CorrelationResult(
        rho=rho,
        p_value=float(result.pvalue),
        strength=interpret_correlation(rho),
        n=xa.size,
    )


def spearman(x: Sequence[float], y: Sequence[float]) -> CorrelationResult:
    """Spearman's rank correlation with two-sided p-value."""
    xa, ya = _paired_arrays(x, y)
    if np.ptp(xa) == 0 or np.ptp(ya) == 0:
        raise InvalidDistributionError(
            "correlation undefined for a constant sequence"
        )
    rho, p_value = stats.spearmanr(xa, ya)
    rho = float(rho)
    return CorrelationResult(
        rho=rho,
        p_value=float(p_value),
        strength=interpret_correlation(rho),
        n=xa.size,
    )


def jaccard_index(left: Iterable[str], right: Iterable[str]) -> float:
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` between two sets.

    Used in Section 5.4 to quantify toplist churn between the May 2023
    and May 2025 snapshots (average across countries: ≈0.37).  Two empty
    sets are defined as identical (1.0).
    """
    a, b = set(left), set(right)
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)
