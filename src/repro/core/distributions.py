"""Provider distributions: the basic object every dependence metric consumes.

A :class:`ProviderDistribution` records, for one slice of the web (for
example "the hosting layer of Thailand's top 10K websites"), how many
websites depend on each provider.  It is the observed distribution ``A``
of Section 3.2 of the paper.  The class is deliberately small: it stores
counts, exposes ranked/normalized views, and answers the market-share
queries that prior work used as ad-hoc centralization measures (top-N
share, providers needed to cover a fraction of sites).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

import numpy as np

from ..errors import EmptyDistributionError, InvalidDistributionError

__all__ = ["ProviderDistribution"]


class ProviderDistribution:
    """Counts of websites per provider for one country/layer slice.

    Parameters
    ----------
    counts:
        A mapping ``provider name -> number of websites`` or an iterable of
        ``(provider, count)`` pairs.  Counts must be positive finite
        numbers; fractional counts are allowed so that weighted variants
        (Section 3.2's "assign a weighted mass to each website") work
        unchanged.

    Examples
    --------
    >>> d = ProviderDistribution({"cloudflare": 60, "amazon": 25, "local": 15})
    >>> d.total
    100.0
    >>> d.top_n_share(1)
    0.6
    """

    __slots__ = ("_counts", "_sorted", "_total")

    def __init__(
        self, counts: Mapping[str, float] | Iterable[tuple[str, float]]
    ) -> None:
        items = dict(counts)
        for provider, count in items.items():
            if not isinstance(provider, str):
                raise InvalidDistributionError(
                    f"provider keys must be strings, got {provider!r}"
                )
            if not math.isfinite(count) or count <= 0:
                raise InvalidDistributionError(
                    f"count for {provider!r} must be a positive finite "
                    f"number, got {count!r}"
                )
        self._counts: dict[str, float] = items
        self._sorted: list[tuple[str, float]] = sorted(
            items.items(), key=lambda kv: (-kv[1], kv[0])
        )
        self._total: float = float(sum(items.values()))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_assignments(
        cls, assignments: Iterable[str | None]
    ) -> "ProviderDistribution":
        """Build a distribution from one provider label per website.

        ``None`` entries (sites whose provider could not be determined,
        e.g. failed resolutions) are skipped, mirroring how the paper's
        pipeline drops unresolvable domains.
        """
        counter = Counter(a for a in assignments if a is not None)
        if not counter:
            raise EmptyDistributionError(
                "no websites with a known provider in assignments"
            )
        return cls(counter)

    @classmethod
    def from_counts_array(
        cls, counts: Iterable[float], prefix: str = "provider"
    ) -> "ProviderDistribution":
        """Build a distribution from bare counts with synthetic names.

        Useful for the synthetic example curves of Figure 3 where the
        identity of each provider is irrelevant.
        """
        items = {
            f"{prefix}-{i}": float(c) for i, c in enumerate(counts) if c > 0
        }
        if not items:
            raise EmptyDistributionError("counts array contained no mass")
        return cls(items)

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        """Total number of websites ``C`` in this slice."""
        return self._total

    @property
    def n_providers(self) -> int:
        """Number of distinct providers with at least one website."""
        return len(self._counts)

    @property
    def providers(self) -> list[str]:
        """Provider names in nonincreasing count order (ties by name)."""
        return [name for name, _ in self._sorted]

    def count_of(self, provider: str) -> float:
        """Number of websites on ``provider`` (0.0 if absent)."""
        return self._counts.get(provider, 0.0)

    def share_of(self, provider: str) -> float:
        """Fraction of websites on ``provider`` (``a_i / C``)."""
        return self._counts.get(provider, 0.0) / self._total

    def counts(self) -> np.ndarray:
        """Counts as a nonincreasing float array (the ``a_i`` sequence)."""
        return np.array([c for _, c in self._sorted], dtype=float)

    def shares(self) -> np.ndarray:
        """Market shares as a nonincreasing array summing to 1."""
        return self.counts() / self._total

    def ranked(self) -> list[tuple[str, float]]:
        """(provider, count) pairs in nonincreasing count order."""
        return list(self._sorted)

    def as_dict(self) -> dict[str, float]:
        """A copy of the raw provider -> count mapping."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Market-share queries (the prior-work descriptive statistics)
    # ------------------------------------------------------------------

    def top_n_share(self, n: int) -> float:
        """Fraction of websites served by the ``n`` largest providers.

        This is the "top-N" heuristic the paper critiques in Section 3.1;
        it is provided both as a baseline for the benchmarks and because
        it remains a useful descriptive statistic.
        """
        if n < 0:
            raise ValueError(f"n must be nonnegative, got {n}")
        return sum(c for _, c in self._sorted[:n]) / self._total

    def top_n(self, n: int) -> list[tuple[str, float]]:
        """The ``n`` largest providers with their counts."""
        if n < 0:
            raise ValueError(f"n must be nonnegative, got {n}")
        return list(self._sorted[:n])

    def providers_covering(self, fraction: float) -> int:
        """Smallest number of providers covering ``fraction`` of websites.

        Used for statements like "90% of websites are hosted by fewer
        than 206 providers in every country" (Section 5.1).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        target = fraction * self._total
        running = 0.0
        for i, (_, count) in enumerate(self._sorted, start=1):
            running += count
            if running >= target - 1e-9:
                return i
        return len(self._sorted)

    def rank_curve(self, max_rank: int | None = None) -> np.ndarray:
        """Percent of websites per provider rank (Figure 1's y-axis)."""
        shares = self.shares() * 100.0
        if max_rank is not None:
            shares = shares[:max_rank]
        return shares

    def cumulative_curve(self) -> np.ndarray:
        """Cumulative count of websites by provider rank (Figure 3 axes)."""
        return np.cumsum(self.counts())

    def tail_share(self, below: float) -> float:
        """Fraction of sites on providers with fewer than ``below`` sites.

        Supports Section 5.1's long-tail comparison ("providers with
        fewer than 100 websites host 17% of Iran's top sites").
        """
        return (
            sum(c for _, c in self._sorted if c < below) / self._total
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def merge(self, other: "ProviderDistribution") -> "ProviderDistribution":
        """Combine two slices (e.g. to build a global aggregate)."""
        merged = Counter(self._counts)
        merged.update(other._counts)
        return ProviderDistribution(merged)

    def restrict(self, providers: Iterable[str]) -> "ProviderDistribution":
        """Keep only the named providers (e.g. one class of providers)."""
        keep = set(providers)
        items = {p: c for p, c in self._counts.items() if p in keep}
        if not items:
            raise EmptyDistributionError(
                "restriction removed every provider"
            )
        return ProviderDistribution(items)

    def relabel(
        self, mapping: Mapping[str, str]
    ) -> "ProviderDistribution":
        """Re-aggregate counts under new labels.

        Providers missing from ``mapping`` keep their own name.  This is
        how sibling brands collapse onto owners (e.g. certificate issuer
        brands onto CA owners per CCADB).
        """
        merged: Counter[str] = Counter()
        for provider, count in self._counts.items():
            merged[mapping.get(provider, provider)] += count
        return ProviderDistribution(merged)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self._sorted)

    def __contains__(self, provider: object) -> bool:
        return provider in self._counts

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ProviderDistribution):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover - dict-like, unhashable
        raise TypeError("ProviderDistribution is mutable-adjacent; not hashable")

    def __repr__(self) -> str:
        head = ", ".join(
            f"{name}={count:g}" for name, count in self._sorted[:3]
        )
        suffix = ", ..." if len(self._sorted) > 3 else ""
        return (
            f"ProviderDistribution({head}{suffix}; "
            f"n={self.n_providers}, C={self._total:g})"
        )
