"""Regionalization metrics: usage, endemicity, and insularity (Section 3.3).

Centralization alone lacks geopolitical context.  These metrics describe
the *global reach of providers* and the *entanglement of countries*:

* A provider's **usage curve** lists the percentage of popular websites
  in each country that use the provider, sorted nonincreasing.
* **Usage** ``U`` is the area under the usage curve — sheer scale.
* **Endemicity** ``E`` is the area between the curve and the horizontal
  line at its maximum — deviation from globally consistent usage.
* The **endemicity ratio** ``E_R = E / (U + E)`` normalizes by provider
  size; 0 means perfectly global, values near 1 mean usage concentrated
  in few countries.
* A country's **insularity** at a layer is the fraction of its websites
  whose layer is served by a provider based in that same country.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import EmptyDistributionError, InvalidDistributionError

__all__ = [
    "UsageCurve",
    "usage",
    "endemicity",
    "endemicity_ratio",
    "insularity",
    "dependence_on",
]


@dataclass(frozen=True, slots=True)
class UsageCurve:
    """A provider's per-country usage, sorted nonincreasing.

    Values are *percentages* (0–100) of each country's popular websites
    using the provider, matching Figure 4's axes.  ``countries`` records
    the country order after sorting so reports can label the curve.
    """

    values: np.ndarray
    countries: tuple[str, ...]

    @classmethod
    def from_usage(
        cls, per_country_percent: Mapping[str, float]
    ) -> "UsageCurve":
        """Build a curve from a ``country -> percent`` mapping.

        Countries where the provider is unused should be included with
        value 0 so that curves from the same study share a domain.
        """
        if not per_country_percent:
            raise EmptyDistributionError("usage mapping is empty")
        for country, percent in per_country_percent.items():
            if not np.isfinite(percent) or percent < 0 or percent > 100:
                raise InvalidDistributionError(
                    f"usage percent for {country!r} must be in [0, 100], "
                    f"got {percent!r}"
                )
        ordered = sorted(
            per_country_percent.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return cls(
            values=np.array([v for _, v in ordered], dtype=float),
            countries=tuple(c for c, _ in ordered),
        )

    @property
    def n_countries(self) -> int:
        """Number of countries on the curve."""
        return self.values.size

    @property
    def maximum(self) -> float:
        """Peak usage ``u_1`` — the provider's strongest country."""
        return float(self.values[0]) if self.values.size else 0.0

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise EmptyDistributionError("usage curve must be nonempty 1-D")
        if np.any(np.diff(values) > 1e-9):
            raise InvalidDistributionError(
                "usage curve values must be nonincreasing"
            )
        if len(self.countries) != values.size:
            raise InvalidDistributionError(
                "countries labels must match values length"
            )
        object.__setattr__(self, "values", values)


def _curve_values(
    curve: UsageCurve | Sequence[float] | np.ndarray,
) -> np.ndarray:
    if isinstance(curve, UsageCurve):
        return curve.values
    values = np.sort(np.asarray(curve, dtype=float))[::-1]
    if values.size == 0:
        raise EmptyDistributionError("usage curve must be nonempty")
    if not np.all(np.isfinite(values)) or np.any(values < 0):
        raise InvalidDistributionError("usage values must be nonnegative")
    return values


def usage(curve: UsageCurve | Sequence[float] | np.ndarray) -> float:
    """Usage ``U``: the area under the usage curve, ``sum_i u_i``.

    Captures total usage across the countries of the dataset; the
    "largeness" of the provider on the global stage.
    """
    return float(_curve_values(curve).sum())


def endemicity(curve: UsageCurve | Sequence[float] | np.ndarray) -> float:
    """Endemicity ``E``: area between the curve and the line at its max.

    ``E = sum_i (u_1 - u_i)``.  Zero for a perfectly flat (globally
    consistent) provider; grows when usage is concentrated in a few
    countries.
    """
    values = _curve_values(curve)
    return float(np.sum(values[0] - values))


def endemicity_ratio(
    curve: UsageCurve | Sequence[float] | np.ndarray,
) -> float:
    """Endemicity ratio ``E_R = E / (U + E)`` in ``[0, 1]``.

    The paper's size-normalized regionality measure: small values mean
    global reach, large values mean regional concentration.  Note that
    ``U + E = n * u_1`` so ``E_R = 1 - mean(u) / max(u)``.

    A provider used nowhere (all-zero curve) has no meaningful ratio;
    we define it as 0.0 (trivially "global at zero scale") to keep
    downstream clustering total.
    """
    values = _curve_values(curve)
    u = float(values.sum())
    e = float(np.sum(values[0] - values))
    if u + e == 0.0:
        return 0.0
    return e / (u + e)


def insularity(
    site_providers: Iterable[str | None],
    provider_country: Mapping[str, str],
    country: str,
) -> float:
    """Fraction of a country's websites served from the same country.

    Parameters
    ----------
    site_providers:
        The provider serving each website of the country's toplist at
        the layer under study (``None`` for unresolvable sites, which
        are excluded from the denominator).
    provider_country:
        Home country of each provider (e.g. from AS WHOIS organization
        data).  Providers missing from the mapping count as foreign.
    country:
        The ISO code of the country whose insularity is being measured.
    """
    total = 0
    local = 0
    for provider in site_providers:
        if provider is None:
            continue
        total += 1
        if provider_country.get(provider) == country:
            local += 1
    if total == 0:
        raise EmptyDistributionError(
            "no websites with a known provider; insularity undefined"
        )
    return local / total


def dependence_on(
    site_providers: Iterable[str | None],
    provider_country: Mapping[str, str],
    foreign_country: str,
) -> float:
    """Fraction of websites served by providers based in another country.

    The cross-border companion to :func:`insularity`, used for the
    Section 5.3.3 case studies (e.g. Turkmenistan's 33% dependence on
    Russian providers).  ``dependence_on(x, pc, home) == insularity``
    when ``foreign_country`` is the home country itself.
    """
    return insularity(site_providers, provider_country, foreign_country)
