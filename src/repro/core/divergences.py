"""Distribution-distance design space explored in Section 3.1.

The paper considers two families of statistical distances before
settling on the Wasserstein distance:

* **f-divergences** — KL divergence, Jensen–Shannon divergence,
  Hellinger distance, total variation distance.  These saturate to a
  constant as soon as the two distributions have disjoint support, which
  makes them unsuitable for comparing a heavily skewed observed
  distribution against the hypothetical "every site its own provider"
  reference.  :func:`disjoint_support_saturation` demonstrates this
  failure mode executably.
* **Integral probability metrics** — Wasserstein distance (in
  :mod:`repro.core.emd`), maximum mean discrepancy, and the Dudley
  metric, which remain informative for non-overlapping distributions.

These implementations operate on discrete probability vectors (optionally
with support point locations for the IPMs).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..errors import EmptyDistributionError, InvalidDistributionError

__all__ = [
    "kl_divergence",
    "js_divergence",
    "hellinger_distance",
    "total_variation",
    "mmd",
    "dudley_metric",
    "disjoint_support_saturation",
]

_EPS = 1e-12


def _as_prob(p: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(p, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise EmptyDistributionError(f"{name} must be a nonempty 1-D array")
    if not np.all(np.isfinite(arr)) or np.any(arr < 0):
        raise InvalidDistributionError(f"{name} must be nonnegative and finite")
    total = arr.sum()
    if total <= 0:
        raise EmptyDistributionError(f"{name} has zero total mass")
    return arr / total


def _paired(
    p: Sequence[float] | np.ndarray, q: Sequence[float] | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    pa, qa = _as_prob(p, "p"), _as_prob(q, "q")
    if pa.size != qa.size:
        raise InvalidDistributionError(
            f"p and q must share a support of equal size "
            f"({pa.size} != {qa.size}); pad with zeros to align"
        )
    return pa, qa


def kl_divergence(
    p: Sequence[float] | np.ndarray, q: Sequence[float] | np.ndarray
) -> float:
    """Kullback–Leibler divergence ``D(p || q)`` in nats.

    Infinite whenever ``p`` puts mass where ``q`` does not — the first
    symptom of the f-divergence family's unsuitability for the paper's
    reference comparison.
    """
    pa, qa = _paired(p, q)
    mask = pa > 0
    if np.any(qa[mask] <= 0):
        return math.inf
    return float(np.sum(pa[mask] * np.log(pa[mask] / qa[mask])))


def js_divergence(
    p: Sequence[float] | np.ndarray, q: Sequence[float] | np.ndarray
) -> float:
    """Jensen–Shannon divergence (symmetrized, bounded KL; log base e).

    Bounded by ``ln 2`` — and it *attains* ``ln 2`` for any pair of
    disjoint distributions, losing all ability to rank them.
    """
    pa, qa = _paired(p, q)
    m = 0.5 * (pa + qa)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log(a[mask] / b[mask])))

    return 0.5 * _kl(pa, m) + 0.5 * _kl(qa, m)


def hellinger_distance(
    p: Sequence[float] | np.ndarray, q: Sequence[float] | np.ndarray
) -> float:
    """Hellinger distance in ``[0, 1]``; 1 for disjoint supports."""
    pa, qa = _paired(p, q)
    return float(
        math.sqrt(0.5 * np.sum((np.sqrt(pa) - np.sqrt(qa)) ** 2))
    )


def total_variation(
    p: Sequence[float] | np.ndarray, q: Sequence[float] | np.ndarray
) -> float:
    """Total variation distance in ``[0, 1]``; 1 for disjoint supports."""
    pa, qa = _paired(p, q)
    return float(0.5 * np.sum(np.abs(pa - qa)))


def _gaussian_kernel(
    x: np.ndarray, y: np.ndarray, bandwidth: float
) -> np.ndarray:
    diff = x[:, None] - y[None, :]
    return np.exp(-(diff**2) / (2.0 * bandwidth**2))


def mmd(
    p: Sequence[float] | np.ndarray,
    q: Sequence[float] | np.ndarray,
    support_p: Sequence[float] | np.ndarray | None = None,
    support_q: Sequence[float] | np.ndarray | None = None,
    bandwidth: float = 1.0,
) -> float:
    """Maximum mean discrepancy with a Gaussian kernel.

    An integral probability metric: remains informative for disjoint
    supports because it compares distributions through their embeddings
    at the *support locations*, not pointwise mass overlap.  Supports
    default to the integer positions ``0..n-1``.
    """
    pa = _as_prob(p, "p")
    qa = _as_prob(q, "q")
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    xs = (
        np.arange(pa.size, dtype=float)
        if support_p is None
        else np.asarray(support_p, dtype=float)
    )
    ys = (
        np.arange(qa.size, dtype=float)
        if support_q is None
        else np.asarray(support_q, dtype=float)
    )
    if xs.size != pa.size or ys.size != qa.size:
        raise InvalidDistributionError("support sizes must match mass sizes")
    kxx = pa @ _gaussian_kernel(xs, xs, bandwidth) @ pa
    kyy = qa @ _gaussian_kernel(ys, ys, bandwidth) @ qa
    kxy = pa @ _gaussian_kernel(xs, ys, bandwidth) @ qa
    return float(math.sqrt(max(kxx + kyy - 2.0 * kxy, 0.0)))


def dudley_metric(
    p: Sequence[float] | np.ndarray,
    q: Sequence[float] | np.ndarray,
    support_p: Sequence[float] | np.ndarray | None = None,
    support_q: Sequence[float] | np.ndarray | None = None,
) -> float:
    """Dudley (bounded-Lipschitz) metric on 1-D supports.

    ``sup { |E_p f - E_q f| : ||f||_inf + Lip(f) <= 1 }``.  Computed by
    solving the dual linear program over function values at the union of
    support points.  Like all IPMs it degrades gracefully on disjoint
    supports; it is bounded by 2.
    """
    from scipy.optimize import linprog

    pa = _as_prob(p, "p")
    qa = _as_prob(q, "q")
    xs = (
        np.arange(pa.size, dtype=float)
        if support_p is None
        else np.asarray(support_p, dtype=float)
    )
    ys = (
        np.arange(qa.size, dtype=float)
        if support_q is None
        else np.asarray(support_q, dtype=float)
    )
    if xs.size != pa.size or ys.size != qa.size:
        raise InvalidDistributionError("support sizes must match mass sizes")

    points = np.unique(np.concatenate([xs, ys]))
    weight = np.zeros(points.size)
    for value, mass in zip(xs, pa):
        weight[np.searchsorted(points, value)] += mass
    for value, mass in zip(ys, qa):
        weight[np.searchsorted(points, value)] -= mass

    # Maximize sum_k weight_k * f_k subject to |f_k| <= b, |f_k - f_l| <=
    # L * |x_k - x_l| for adjacent points, and b + L <= 1.  Variables:
    # f_1..f_K, b, L.
    k = points.size
    c = np.concatenate([-weight, [0.0, 0.0]])  # maximize -> minimize -c
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    for i in range(k):
        row = np.zeros(k + 2)
        row[i] = 1.0
        row[k] = -1.0  # f_i - b <= 0
        rows.append(row)
        rhs.append(0.0)
        row = np.zeros(k + 2)
        row[i] = -1.0
        row[k] = -1.0  # -f_i - b <= 0
        rows.append(row)
        rhs.append(0.0)
    for i in range(k - 1):
        gap = points[i + 1] - points[i]
        row = np.zeros(k + 2)
        row[i + 1], row[i], row[k + 1] = 1.0, -1.0, -gap
        rows.append(row)
        rhs.append(0.0)
        row = np.zeros(k + 2)
        row[i + 1], row[i], row[k + 1] = -1.0, 1.0, -gap
        rows.append(row)
        rhs.append(0.0)
    row = np.zeros(k + 2)
    row[k], row[k + 1] = 1.0, 1.0  # b + L <= 1
    rows.append(row)
    rhs.append(1.0)

    bounds = [(None, None)] * k + [(0, None), (0, None)]
    result = linprog(
        c, A_ub=np.array(rows), b_ub=np.array(rhs), bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise InvalidDistributionError(f"Dudley LP failed: {result.message}")
    return float(-result.fun)


def disjoint_support_saturation(
    sizes: Sequence[int] = (2, 8, 32, 128),
) -> dict[int, dict[str, float]]:
    """Demonstrate why f-divergences were rejected (Section 3.1).

    For each ``n`` builds two *disjoint* uniform distributions of ``n``
    outcomes each and evaluates every distance.  The f-divergences
    return the same constant regardless of ``n`` (JS: ``ln 2``,
    Hellinger: 1, TV: 1, KL: inf) while the IPMs keep discriminating.
    """
    out: dict[int, dict[str, float]] = {}
    for n in sizes:
        p = np.concatenate([np.full(n, 1.0 / n), np.zeros(n)])
        q = np.concatenate([np.zeros(n), np.full(n, 1.0 / n)])
        support = np.arange(2 * n, dtype=float)
        out[n] = {
            "kl": kl_divergence(p, q),
            "js": js_divergence(p, q),
            "hellinger": hellinger_distance(p, q),
            "total_variation": total_variation(p, q),
            "mmd": mmd(p, q, support, support, bandwidth=float(n)),
            "dudley": dudley_metric(p, q, support, support),
        }
    return out
