"""Sharded parallel campaign execution with checkpoint/resume.

A measurement campaign is embarrassingly parallel *by country*: the
paper measures each country's toplist independently, so the campaign
runner makes the country the unit of determinism.  Every country is
measured with completely fresh pipeline state — its own resolver
(cache and logical clock), fault plan, retry policy, circuit breaker,
and, when instrumented, its own metrics registry and span tracer —
against a :class:`~repro.worldgen.world.World` built from the same
:class:`~repro.worldgen.config.WorldConfig`.  Because a country unit
never observes another country's state, its rows, metrics, and spans
are a pure function of ``(config, campaign knobs, country)``.

That invariant is what makes sharding safe: ``run_campaign`` hands
one task per country to a supervised worker fleet
(:class:`~repro.pipeline.supervisor.ShardSupervisor`; each worker
builds one World — inherited copy-on-write under fork, rebuilt once
per process under spawn — and reuses it across its tasks), then
merges the per-country results **in sorted country order** regardless
of completion order.  The supervisor resubmits countries whose worker
crashed or hung, which cannot change output for the same reason
sharding cannot: a country unit is a pure function of the spec.  The
merge is exact, not approximate:

* rows concatenate in ``(country, rank)`` order, the order the serial
  run produces;
* metrics registries merge by summing counters/gauges and cumulative
  histogram buckets (:func:`~repro.obs.metrics.merge_metrics_payloads`)
  and render through the same JSON formatter;
* span files stitch with span ids renumbered by cumulative offset, so
  the id sequence is again 1..N in merged order.

``workers <= 1`` runs the same country units inline through the same
merge path — so ``--workers 4`` output is byte-identical to the
serial run for the same seed, which the test suite asserts on the
exported CSV and the merged metrics JSON.

The same purity powers persistence: with a
:class:`~repro.store.store.CampaignStore` attached, every country's
result is checkpointed through the store as it completes, keyed by
:func:`~repro.store.digest.shard_key` (campaign knobs + the country's
world-slice digest).  ``resume=True`` reuses any shard whose key
already matches — an interrupted campaign picks up where it stopped
and merges to byte-identical output, because reused rows and metrics
pass through exactly the same codec and merge as fresh ones.
``baseline=<campaign-id>`` (the ``--since`` path) is the same lookup
after a world evolution: unchurned countries keep their slice digest,
hit the store, and are never re-measured.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import PipelineError, StoreCorruptionError
from ..faults.plan import FaultPlan, fault_profile
from ..net.dns import ZoneCache
from ..faults.retry import RetryPolicy
from ..obs.instrument import (
    Instrumentation,
    StoreTelemetry,
    SupervisorTelemetry,
)
from ..obs.metrics import merge_metrics_payloads, render_metrics_json
from ..obs.profile import CampaignProfiler, render_profile_json
from ..obs.spans import stitch_spans, write_spans_jsonl
from ..worldgen.churn import ChurnConfig, evolve
from ..worldgen.config import WorldConfig
from ..worldgen.world import World
from .measure import STANFORD_VANTAGE_CONTINENT, MeasurementPipeline
from .records import MeasurementDataset, WebsiteMeasurement
from .supervisor import ShardSupervisor, SupervisorPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.chaos import ChaosPlan
    from ..store.store import CampaignStore

__all__ = [
    "CampaignSpec",
    "CountryResult",
    "CampaignResult",
    "CampaignHalted",
    "WorkerContext",
    "measure_country_unit",
    "pop_world_build",
    "run_campaign",
    "worker_context",
]


class CampaignHalted(PipelineError):
    """Raised when ``halt_after`` stops a campaign mid-run.

    The checkpoint machinery's test hook: everything measured so far
    is already persisted in the store, so a subsequent ``--resume``
    completes the campaign.
    """

    def __init__(self, campaign: str | None, completed: int) -> None:
        super().__init__(
            f"campaign halted after {completed} measured "
            f"countr{'y' if completed == 1 else 'ies'}"
        )
        self.campaign = campaign
        self.completed = completed


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to measure a country deterministically.

    Frozen and picklable: the spec crosses the process boundary once
    per shard, and every knob that influences output lives here (a
    worker rebuilds the World from ``config`` and the fault plan from
    the profile name + seed, never from live objects).
    """

    config: WorldConfig
    fault_profile: str = "none"
    fault_seed: int = 0
    retries: int = 1
    vantage_continent: str = STANFORD_VANTAGE_CONTINENT
    vantage_country: str | None = None
    instrument: bool = False
    countries: tuple[str, ...] | None = None
    #: When set, the measured world is the churned evolution of the
    #: base world: ``evolve(World(config), churn)``.  An evolved world
    #: cannot be rebuilt from its *own* config (the evolution plan
    #: carries sites from the previous epoch), so the spec carries the
    #: base config + churn recipe instead — still a pure, picklable
    #: description that any worker process can replay exactly.  A
    #: *tuple* of recipes is a churn chain applied left to right
    #: (epoch N of a longitudinal watch is N chained evolutions).
    churn: ChurnConfig | tuple[ChurnConfig, ...] | None = None

    def churn_chain(self) -> tuple[ChurnConfig, ...]:
        """The churn recipes applied to the base world, in order."""
        if self.churn is None:
            return ()
        if isinstance(self.churn, ChurnConfig):
            return (self.churn,)
        return tuple(self.churn)

    def build_world(self) -> World:
        """Materialize the world this campaign measures."""
        world = World(self.config)
        for churn in self.churn_chain():
            world = evolve(world, churn)
        return world

    def resolved_countries(self) -> list[str]:
        """The sorted country list this campaign will measure."""
        if self.countries is not None:
            return sorted(self.countries)
        return sorted(self.config.countries)


@dataclass(frozen=True)
class CountryResult:
    """One country's measurements plus its unit-local telemetry."""

    country: str
    rows: tuple[WebsiteMeasurement, ...]
    #: Metrics-registry payload (``MetricsRegistry.to_dict``) or None
    #: when the unit ran uninstrumented.
    metrics: dict | None
    #: Finished span dicts (``Span.to_dict``, completion order, span
    #: ids 1..n) or None when the unit ran uninstrumented.
    spans: tuple[dict, ...] | None
    #: Faults the unit's plan actually injected.
    injected_faults: int
    #: Nameserver circuits open or half-open at end of unit.
    open_circuits: tuple[str, ...]
    #: Why the supervisor quarantined this country (None for a real
    #: measurement).  A quarantined unit is a tombstone: zero rows, no
    #: telemetry — the degraded-row idea applied to a whole country.
    quarantined: str | None = None


@dataclass(frozen=True)
class CampaignResult:
    """The merged output of a campaign, serial or sharded."""

    dataset: MeasurementDataset
    #: Merged metrics payload (None when uninstrumented).
    metrics: dict | None
    #: Stitched span dicts with globally renumbered ids (None when
    #: uninstrumented).
    spans: tuple[dict, ...] | None
    injected_faults: int
    open_circuits: tuple[str, ...]
    #: Campaign id in the attached store (None when no store was used).
    campaign: str | None = None
    #: Store hit/miss/skip payload (None when no store was used).  Kept
    #: separate from ``metrics`` so resumed runs stay byte-identical.
    store_metrics: dict | None = None
    #: Countries the supervisor quarantined (empty on a clean run);
    #: their rows are absent from ``dataset`` and a later ``--resume``
    #: re-measures exactly these.
    quarantined: tuple[str, ...] = ()
    #: Supervisor telemetry payload (shard retries/timeouts/quarantine
    #: counters).  None when nothing went wrong, so happy-path
    #: artifacts stay byte-identical to the unsupervised executor's.
    supervisor_metrics: dict | None = None
    #: Campaign profiler payload (worker utilization, queue depth,
    #: phase attribution; :mod:`repro.obs.profile`).  Its own artifact,
    #: never merged into ``metrics``: profiler numbers are wall-clock
    #: and vary run to run, while ``metrics`` must stay byte-identical
    #: across worker counts.  None when uninstrumented.
    profile: dict | None = None
    #: Campaign lifecycle spans (spawn/world-build/dispatch/compute/
    #: queue-wait/backoff/merge under one ``campaign`` root), kept out
    #: of ``spans`` for the same reason ``profile`` is kept out of
    #: ``metrics``.  :meth:`write_trace` appends them to the trace
    #: file, where trace analyzers split the layers by span name.
    profile_spans: tuple[dict, ...] | None = None

    def write_metrics(self, path: str | Path) -> None:
        """Write the merged metrics payload as deterministic JSON."""
        if self.metrics is None:
            raise PipelineError(
                "campaign ran uninstrumented; no metrics to write"
            )
        Path(path).write_text(
            render_metrics_json(self.metrics), encoding="utf-8"
        )

    def write_trace(self, path: str | Path) -> int:
        """Write the stitched spans as JSONL; returns the span count.

        Campaign lifecycle spans, when profiling ran, follow the
        pipeline spans with ids continuing the sequence — one file
        holds both layers, and loaders need no special casing.
        """
        if self.spans is None:
            raise PipelineError(
                "campaign ran uninstrumented; no trace to write"
            )
        spans = list(self.spans)
        if self.profile_spans:
            offset = len(spans)
            for span in self.profile_spans:
                span = dict(span)
                span["span_id"] += offset
                if span["parent_id"] is not None:
                    span["parent_id"] += offset
                spans.append(span)
        return write_spans_jsonl(spans, path)

    def write_profile(self, path: str | Path) -> None:
        """Write the campaign profile payload as deterministic JSON."""
        if self.profile is None:
            raise PipelineError(
                "campaign ran without profiling; no profile to write"
            )
        Path(path).write_text(
            render_profile_json(self.profile), encoding="utf-8"
        )


def _build_plan(spec: CampaignSpec) -> FaultPlan:
    return fault_profile(spec.fault_profile, seed=spec.fault_seed)


def measure_country_unit(
    world: World,
    spec: CampaignSpec,
    country: str,
    zone_cache: ZoneCache | None = None,
) -> CountryResult:
    """Measure one country with completely fresh pipeline state.

    The World — and the optional :class:`~repro.net.dns.ZoneCache`,
    which is pure world structure — are the only shared objects (both
    immutable during measurement); resolver, fault plan, retry policy,
    breaker, and instrumentation are all unit-local, so the result is
    independent of what other countries ran before it — the invariant
    sharding relies on.
    """
    plan = _build_plan(spec)
    policy = (
        RetryPolicy(max_attempts=spec.retries, seed=spec.fault_seed)
        if spec.retries > 1
        else None
    )
    obs = Instrumentation() if spec.instrument else None
    pipeline = MeasurementPipeline(
        world,
        spec.vantage_continent,
        vantage_country=spec.vantage_country,
        fault_plan=plan,
        retry_policy=policy,
        obs=obs,
        zone_cache=zone_cache,
    )
    rows = pipeline.measure_country(country)
    metrics: dict | None = None
    spans: tuple[dict, ...] | None = None
    if obs is not None:
        obs.finalize(pipeline)
        metrics = obs.registry.to_dict()
        spans = tuple(
            span.to_dict() for span in obs.tracer.finished()
        )
    return CountryResult(
        country=country,
        rows=tuple(rows),
        metrics=metrics,
        spans=spans,
        injected_faults=sum(plan.injected.values()),
        open_circuits=tuple(pipeline.breaker.open_keys()),
    )


@dataclass
class WorkerContext:
    """Long-lived measurement state shared across country units.

    The reusable per-worker context the dispatch overhaul amortizes
    setup behind: the World plus the zone-batched DNS plan table
    (:class:`~repro.net.dns.ZoneCache`).  Both are pure functions of
    the world recipe — never of campaign progress — so sharing one
    context across every unit a process measures cannot couple
    country units (the purity invariant sharding relies on).
    Unit-local state (resolver caches, fault plans, breakers,
    instrumentation) is still built fresh per country inside
    :func:`measure_country_unit`.
    """

    world: World
    zone_cache: ZoneCache

    @classmethod
    def for_world(cls, world: World) -> "WorkerContext":
        return cls(
            world=world, zone_cache=ZoneCache(world.namespace)
        )


#: Context handed to forked workers copy-on-write.  The parent builds
#: it once (and pre-warms the shared provider-zone plans) before
#: creating the pool; fork children inherit it for free, which beats
#: rebuilding a multi-second World in every worker.  Set only for the
#: duration of one sharded run (run_campaign is not reentrant while a
#: pool is live).
_PREFORK_CONTEXT: WorkerContext | None = None

#: Per-process context memo for spawn-based pools, where workers
#: inherit nothing: the first task in each worker builds the World
#: from the spec's recipe (identical by construction — the world is a
#: pure function of config + churn) and every later task in that
#: process reuses it, zone plans included.
_WORKER_CONTEXT: (
    tuple[
        tuple[WorldConfig, ChurnConfig | tuple[ChurnConfig, ...] | None],
        WorkerContext,
    ]
    | None
) = None

#: Monotonic (start, end) of the most recent in-process World build,
#: consumed once by :func:`pop_world_build` so the supervised worker
#: can report the build interval for exactly the task that paid it.
_LAST_WORLD_BUILD: tuple[float, float] | None = None


def worker_context(spec: CampaignSpec) -> WorkerContext:
    """The context a worker process measures with (memoized).

    Forked workers reuse the parent's pre-built context copy-on-write;
    spawned (or respawned) workers build it once per process from the
    spec's recipe and keep it across tasks.
    """
    global _WORKER_CONTEXT, _LAST_WORLD_BUILD
    if _PREFORK_CONTEXT is not None:
        return _PREFORK_CONTEXT
    recipe = (spec.config, spec.churn)
    if _WORKER_CONTEXT is None or _WORKER_CONTEXT[0] != recipe:
        build_start = time.monotonic()
        context = WorkerContext.for_world(spec.build_world())
        _WORKER_CONTEXT = (recipe, context)
        _LAST_WORLD_BUILD = (build_start, time.monotonic())
    return _WORKER_CONTEXT[1]


def worker_world(spec: CampaignSpec) -> World:
    """The World a worker process measures against (memoized)."""
    return worker_context(spec).world


def pop_world_build() -> tuple[float, float] | None:
    """The monotonic interval of this process's last World build.

    Returns ``(start, end)`` once — the caller that triggered the
    build collects it; later calls (and calls after a copy-on-write
    reuse, which builds nothing) return None.
    """
    global _LAST_WORLD_BUILD
    interval, _LAST_WORLD_BUILD = _LAST_WORLD_BUILD, None
    return interval


class _StoreSession:
    """One campaign's interaction with the store, parent-process side.

    Computes the campaign id, per-country slice digests and shard
    keys, decides which countries can reuse stored shards, checkpoints
    each measured result as it lands, and keeps the manifest current on
    disk — so a kill at any instant loses at most the country units
    still in flight.
    """

    def __init__(
        self,
        store: "CampaignStore",
        spec: CampaignSpec,
        world: World,
        countries: list[str],
        *,
        resume: bool,
        baseline: str | None,
    ) -> None:
        from ..store.digest import campaign_id, shard_key, spec_fingerprint
        from ..store.store import MANIFEST_SCHEMA
        from ..worldgen.slices import world_slice_digest

        self.store = store
        self.spec = spec
        self.telemetry = StoreTelemetry()
        self.campaign = campaign_id(spec)
        if baseline is not None and store.load_manifest(baseline) is None:
            raise PipelineError(
                f"--since campaign {baseline} not found in store "
                f"{store.root}"
            )
        self.slices = {
            cc: world_slice_digest(
                world, cc, spec.vantage_continent, spec.vantage_country
            )
            for cc in countries
        }
        self.keys = {
            cc: shard_key(spec, cc, self.slices[cc]) for cc in countries
        }
        self.reused: dict[str, CountryResult] = {}
        reuse_wanted = resume or baseline is not None
        for cc in countries:
            if reuse_wanted and store.has_shard(self.keys[cc]):
                try:
                    shard = store.get_shard(self.keys[cc])
                except StoreCorruptionError as exc:
                    # Re-raise with the campaign the reuse was for: the
                    # operator sees *which* resume/--since hit damage,
                    # not just a bare digest.
                    raise StoreCorruptionError(
                        f"campaign {self.campaign}: reusing {cc} "
                        f"(shard key {self.keys[cc][:16]}...): {exc}"
                    ) from exc
                assert shard is not None
                if shard.quarantined is not None:
                    # A stored tombstone is a promise to re-measure,
                    # never a reusable result.
                    self.telemetry.shard_miss(cc)
                    continue
                self.reused[cc] = shard
                self.telemetry.shard_hit(cc)
                if resume:
                    self.telemetry.resume_skipped(cc)
            elif reuse_wanted:
                self.telemetry.shard_miss(cc)
        self.manifest: dict = {
            "_schema": MANIFEST_SCHEMA,
            "campaign": self.campaign,
            "spec": spec_fingerprint(spec),
            "baseline": baseline,
            "complete": False,
            "countries": {
                cc: {
                    "slice": self.slices[cc],
                    "shard_key": self.keys[cc],
                    "object": store.shard_digest(self.keys[cc])
                    if cc in self.reused
                    else None,
                }
                for cc in countries
            },
        }
        store.save_manifest(self.manifest)

    def checkpoint(self, result: CountryResult) -> None:
        """Persist one finished country and update the manifest.

        Quarantine tombstones are persisted too (provenance: the
        manifest records *why* a country is missing), but marked so
        resume treats them as work to redo, not results to reuse.
        """
        cc = result.country
        digest = self.store.put_shard(self.keys[cc], result)
        entry = self.manifest["countries"][cc]
        entry["object"] = digest
        if result.quarantined is not None:
            entry["quarantined"] = result.quarantined
        else:
            entry.pop("quarantined", None)
        self.store.save_manifest(self.manifest)

    def finish(
        self, complete: bool, supervisor_metrics: dict | None = None
    ) -> None:
        """Record final state and write the store-metrics artifact."""
        self.manifest["complete"] = complete
        self.store.save_manifest(self.manifest)
        payload = self.telemetry.to_dict()
        if supervisor_metrics is not None:
            payload = merge_metrics_payloads(
                [payload, supervisor_metrics]
            )
        self.store.write_store_metrics(self.campaign, payload)


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    *,
    store: "CampaignStore | None" = None,
    resume: bool = False,
    baseline: str | None = None,
    halt_after: int | None = None,
    mp_start_method: str | None = None,
    policy: SupervisorPolicy | None = None,
    chaos: "ChaosPlan | None" = None,
    should_halt: Callable[[], bool] | None = None,
) -> CampaignResult:
    """Run a campaign, optionally sharded, persisted, and supervised.

    ``workers <= 1`` measures every country inline; ``workers > 1``
    dispatches countries to that many supervised worker processes
    (:class:`~repro.pipeline.supervisor.ShardSupervisor`): a worker
    that crashes, reports an error, or blows its per-country
    wall-clock deadline has its country resubmitted with jittered
    backoff, and — with ``policy.quarantine`` — tombstoned once the
    retry budget is spent.  Either way the per-country results merge
    in sorted country order, so the output is invariant under
    ``workers`` (and under any supervision that ends in success).

    With a ``store``, every finished country is checkpointed as it
    completes.  ``resume=True`` reuses stored shards whose key matches
    (continuing an interrupted run of the *same* campaign; quarantine
    tombstones are re-measured, never reused);
    ``baseline=<campaign-id>`` additionally asserts the baseline
    campaign exists and reuses shards across world epochs (the
    ``--since`` path).  ``halt_after=N`` aborts with
    :class:`CampaignHalted` once N fresh countries are persisted —
    the deterministic stand-in for a mid-campaign crash in tests.
    ``mp_start_method`` pins the multiprocessing start method
    (default: fork when available).  ``policy`` (or ``chaos``) forces
    the supervised path even for ``workers=1``; ``chaos`` is the test
    harness's process-fault injector and must never be set in
    production use.  ``should_halt`` is the cooperative-stop hook:
    checked after every checkpoint, a True return halts the campaign
    exactly like ``halt_after`` (used for signal-triggered graceful
    shutdown and per-epoch deadlines in ``repro watch``).
    """
    if (resume or baseline is not None) and store is None:
        raise PipelineError(
            "resume/baseline require a campaign store"
        )
    countries = spec.resolved_countries()
    if not countries:
        raise PipelineError("campaign has no countries to measure")

    profiler = CampaignProfiler() if spec.instrument else None

    def build_parent_world() -> World:
        if profiler is None:
            return spec.build_world()
        build_start = profiler.now()
        world = spec.build_world()
        profiler.world_built("main", build_start, profiler.now())
        return world

    parent_world: World | None = None
    session: _StoreSession | None = None
    if store is not None:
        parent_world = build_parent_world()
        session = _StoreSession(
            store,
            spec,
            parent_world,
            countries,
            resume=resume,
            baseline=baseline,
        )

    to_measure = [
        cc
        for cc in countries
        if session is None or cc not in session.reused
    ]
    measured: dict[str, CountryResult] = {}
    halted = False
    supervisor_telemetry: SupervisorTelemetry | None = None

    def note(result: CountryResult) -> bool:
        """Record one fresh result; True when the campaign must halt."""
        measured[result.country] = result
        if session is not None:
            session.checkpoint(result)
        if halt_after is not None and len(measured) >= halt_after:
            return True
        # The cooperative-halt hook fires *after* the checkpoint, so a
        # signal-triggered stop never loses a finished country: the
        # shard is already durable and --resume picks up from here.
        return should_halt is not None and should_halt()

    workers = min(workers, max(len(to_measure), 1))
    supervised = workers > 1 or policy is not None or chaos is not None
    if not supervised:
        world = parent_world
        if world is None and to_measure:
            world = build_parent_world()
        shared: WorkerContext | None = None
        if world is not None:
            shared = WorkerContext.for_world(world)
        for cc in to_measure:
            assert shared is not None
            compute_start = profiler.now() if profiler is not None else 0.0
            result = measure_country_unit(
                shared.world, spec, cc, zone_cache=shared.zone_cache
            )
            if profiler is not None:
                profiler.computed(cc, compute_start, profiler.now())
            if note(result):
                halted = True
                break
    elif to_measure:
        if mp_start_method is not None:
            context = multiprocessing.get_context(mp_start_method)
        else:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - platform-specific
                context = None
        method = (
            context.get_start_method()
            if context is not None
            else multiprocessing.get_start_method()
        )
        global _PREFORK_CONTEXT
        if method == "fork":
            prefork = WorkerContext.for_world(
                parent_world
                if parent_world is not None
                else build_parent_world()
            )
            warm_start = profiler.now() if profiler is not None else 0.0
            prefork.zone_cache.warm_shared_zones()
            if profiler is not None:
                profiler.zone_warmed(
                    "main", warm_start, profiler.now()
                )
            _PREFORK_CONTEXT = prefork
        supervisor_telemetry = SupervisorTelemetry()
        supervisor = ShardSupervisor(
            spec,
            to_measure,
            workers,
            policy if policy is not None else SupervisorPolicy(),
            chaos=chaos,
            telemetry=supervisor_telemetry,
            profiler=profiler,
            mp_context=context,
        )
        try:
            _results, halted = supervisor.run(note)
        finally:
            _PREFORK_CONTEXT = None

    supervisor_metrics = (
        supervisor_telemetry.to_dict()
        if supervisor_telemetry is not None
        and not supervisor_telemetry.empty()
        else None
    )

    if halted:
        if session is not None:
            session.finish(
                complete=False, supervisor_metrics=supervisor_metrics
            )
            raise CampaignHalted(session.campaign, len(measured))
        raise CampaignHalted(None, len(measured))

    merge_start = profiler.now() if profiler is not None else 0.0
    units = [
        session.reused[cc] if session is not None and cc in session.reused
        else measured[cc]
        for cc in countries
    ]
    quarantined = tuple(
        unit.country for unit in units if unit.quarantined is not None
    )

    dataset = MeasurementDataset(
        vantage_continent=spec.vantage_continent
    )
    for unit in units:
        dataset.extend(unit.rows)

    metrics: dict | None = None
    spans: tuple[dict, ...] | None = None
    if spec.instrument:
        metrics = merge_metrics_payloads(
            [unit.metrics for unit in units if unit.metrics is not None]
        )
        spans = tuple(
            stitch_spans([unit.spans or () for unit in units])
        )

    open_circuits = sorted(
        {key for unit in units for key in unit.open_circuits}
    )
    profile: dict | None = None
    profile_spans: tuple[dict, ...] | None = None
    if profiler is not None:
        profiler.merged(merge_start, profiler.now())
        finished_spans, profile = profiler.finish()
        profile_spans = tuple(finished_spans)
    if session is not None:
        session.finish(
            complete=not quarantined,
            supervisor_metrics=supervisor_metrics,
        )
    return CampaignResult(
        dataset=dataset,
        metrics=metrics,
        spans=spans,
        injected_faults=sum(unit.injected_faults for unit in units),
        open_circuits=tuple(open_circuits),
        campaign=session.campaign if session is not None else None,
        store_metrics=(
            session.telemetry.to_dict() if session is not None else None
        ),
        quarantined=quarantined,
        supervisor_metrics=supervisor_metrics,
        profile=profile,
        profile_spans=profile_spans,
    )
