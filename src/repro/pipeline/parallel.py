"""Sharded parallel campaign execution.

A measurement campaign is embarrassingly parallel *by country*: the
paper measures each country's toplist independently, so the campaign
runner makes the country the unit of determinism.  Every country is
measured with completely fresh pipeline state — its own resolver
(cache and logical clock), fault plan, retry policy, circuit breaker,
and, when instrumented, its own metrics registry and span tracer —
against a :class:`~repro.worldgen.world.World` built from the same
:class:`~repro.worldgen.config.WorldConfig`.  Because a country unit
never observes another country's state, its rows, metrics, and spans
are a pure function of ``(config, campaign knobs, country)``.

That invariant is what makes sharding safe: ``run_campaign`` splits
the sorted country list round-robin across ``workers`` processes
(each worker builds one World and runs its shard's countries through
it), then merges the per-country results **in sorted country order**
regardless of which shard produced them.  The merge is exact, not
approximate:

* rows concatenate in ``(country, rank)`` order, the order the serial
  run produces;
* metrics registries merge by summing counters/gauges and cumulative
  histogram buckets (:func:`~repro.obs.metrics.merge_metrics_payloads`)
  and render through the same JSON formatter;
* span files stitch with span ids renumbered by cumulative offset, so
  the id sequence is again 1..N in merged order.

``workers <= 1`` runs the same country units inline through the same
merge path — so ``--workers 4`` output is byte-identical to the
serial run for the same seed, which the test suite asserts on the
exported CSV and the merged metrics JSON.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from ..errors import PipelineError
from ..faults.plan import FaultPlan, fault_profile
from ..faults.retry import RetryPolicy
from ..obs.instrument import Instrumentation
from ..obs.metrics import merge_metrics_payloads, render_metrics_json
from ..obs.spans import stitch_spans, write_spans_jsonl
from ..worldgen.config import WorldConfig
from ..worldgen.world import World
from .measure import STANFORD_VANTAGE_CONTINENT, MeasurementPipeline
from .records import MeasurementDataset, WebsiteMeasurement

__all__ = [
    "CampaignSpec",
    "CountryResult",
    "CampaignResult",
    "measure_country_unit",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to measure a country deterministically.

    Frozen and picklable: the spec crosses the process boundary once
    per shard, and every knob that influences output lives here (a
    worker rebuilds the World from ``config`` and the fault plan from
    the profile name + seed, never from live objects).
    """

    config: WorldConfig
    fault_profile: str = "none"
    fault_seed: int = 0
    retries: int = 1
    vantage_continent: str = STANFORD_VANTAGE_CONTINENT
    vantage_country: str | None = None
    instrument: bool = False
    countries: tuple[str, ...] | None = None

    def resolved_countries(self) -> list[str]:
        """The sorted country list this campaign will measure."""
        if self.countries is not None:
            return sorted(self.countries)
        return sorted(self.config.countries)


@dataclass(frozen=True)
class CountryResult:
    """One country's measurements plus its unit-local telemetry."""

    country: str
    rows: tuple[WebsiteMeasurement, ...]
    #: Metrics-registry payload (``MetricsRegistry.to_dict``) or None
    #: when the unit ran uninstrumented.
    metrics: dict | None
    #: Finished span dicts (``Span.to_dict``, completion order, span
    #: ids 1..n) or None when the unit ran uninstrumented.
    spans: tuple[dict, ...] | None
    #: Faults the unit's plan actually injected.
    injected_faults: int
    #: Nameserver circuits open or half-open at end of unit.
    open_circuits: tuple[str, ...]


@dataclass(frozen=True)
class CampaignResult:
    """The merged output of a campaign, serial or sharded."""

    dataset: MeasurementDataset
    #: Merged metrics payload (None when uninstrumented).
    metrics: dict | None
    #: Stitched span dicts with globally renumbered ids (None when
    #: uninstrumented).
    spans: tuple[dict, ...] | None
    injected_faults: int
    open_circuits: tuple[str, ...]

    def write_metrics(self, path: str | Path) -> None:
        """Write the merged metrics payload as deterministic JSON."""
        if self.metrics is None:
            raise PipelineError(
                "campaign ran uninstrumented; no metrics to write"
            )
        Path(path).write_text(
            render_metrics_json(self.metrics), encoding="utf-8"
        )

    def write_trace(self, path: str | Path) -> int:
        """Write the stitched spans as JSONL; returns the span count."""
        if self.spans is None:
            raise PipelineError(
                "campaign ran uninstrumented; no trace to write"
            )
        return write_spans_jsonl(list(self.spans), path)


def _build_plan(spec: CampaignSpec) -> FaultPlan:
    return fault_profile(spec.fault_profile, seed=spec.fault_seed)


def measure_country_unit(
    world: World, spec: CampaignSpec, country: str
) -> CountryResult:
    """Measure one country with completely fresh pipeline state.

    The World is the only shared object (it is immutable during
    measurement); resolver, fault plan, retry policy, breaker, and
    instrumentation are all unit-local, so the result is independent
    of what other countries ran before it — the invariant sharding
    relies on.
    """
    plan = _build_plan(spec)
    policy = (
        RetryPolicy(max_attempts=spec.retries, seed=spec.fault_seed)
        if spec.retries > 1
        else None
    )
    obs = Instrumentation() if spec.instrument else None
    pipeline = MeasurementPipeline(
        world,
        spec.vantage_continent,
        vantage_country=spec.vantage_country,
        fault_plan=plan,
        retry_policy=policy,
        obs=obs,
    )
    rows = pipeline.measure_country(country)
    metrics: dict | None = None
    spans: tuple[dict, ...] | None = None
    if obs is not None:
        obs.finalize(pipeline)
        metrics = obs.registry.to_dict()
        spans = tuple(
            span.to_dict() for span in obs.tracer.finished()
        )
    return CountryResult(
        country=country,
        rows=tuple(rows),
        metrics=metrics,
        spans=spans,
        injected_faults=sum(plan.injected.values()),
        open_circuits=tuple(pipeline.breaker.open_keys()),
    )


#: World handed to forked workers copy-on-write.  The parent builds it
#: once before creating the pool; fork children inherit it for free,
#: which beats rebuilding a multi-second World in every worker.  Set
#: only for the duration of one sharded run (run_campaign is not
#: reentrant while a pool is live).
_PREFORK_WORLD: World | None = None


def _run_shard(
    spec: CampaignSpec, countries: Sequence[str]
) -> list[CountryResult]:
    """Worker entry point: one World, one shard of countries.

    Module-level (picklable) for :class:`ProcessPoolExecutor`; also
    the inline path for ``workers <= 1``, so serial and parallel runs
    share every line of measurement code.  Uses the pre-fork World
    when one was inherited; builds its own on spawn-based platforms
    (identical by construction — World is a pure function of config).
    """
    world = _PREFORK_WORLD
    if world is None:
        world = World(spec.config)
    return [
        measure_country_unit(world, spec, country)
        for country in countries
    ]


def run_campaign(
    spec: CampaignSpec, workers: int = 1
) -> CampaignResult:
    """Run a campaign, optionally sharded across worker processes.

    ``workers <= 1`` measures every country inline; ``workers > 1``
    splits the sorted country list round-robin across that many
    processes.  Either way the per-country results merge in sorted
    country order, so the output is invariant under ``workers``.
    """
    countries = spec.resolved_countries()
    if not countries:
        raise PipelineError("campaign has no countries to measure")
    workers = min(workers, len(countries))
    if workers <= 1:
        units = _run_shard(spec, countries)
    else:
        shards = [
            countries[index::workers] for index in range(workers)
        ]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        units = []
        global _PREFORK_WORLD
        _PREFORK_WORLD = (
            World(spec.config) if context is not None else None
        )
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                for shard_units in pool.map(
                    _run_shard, [spec] * len(shards), shards
                ):
                    units.extend(shard_units)
        finally:
            _PREFORK_WORLD = None
    units.sort(key=lambda unit: unit.country)

    dataset = MeasurementDataset(
        vantage_continent=spec.vantage_continent
    )
    for unit in units:
        dataset.extend(unit.rows)

    metrics: dict | None = None
    spans: tuple[dict, ...] | None = None
    if spec.instrument:
        metrics = merge_metrics_payloads(
            [unit.metrics for unit in units if unit.metrics is not None]
        )
        spans = tuple(
            stitch_spans([unit.spans or () for unit in units])
        )

    open_circuits = sorted(
        {key for unit in units for key in unit.open_circuits}
    )
    return CampaignResult(
        dataset=dataset,
        metrics=metrics,
        spans=spans,
        injected_faults=sum(unit.injected_faults for unit in units),
        open_circuits=tuple(open_circuits),
    )
