"""Process supervision for sharded campaigns.

The executor in :mod:`repro.pipeline.parallel` made the country the
unit of determinism; this module makes it the unit of *failure*.  A
long campaign at paper scale (150 countries x 10K sites) will meet the
operational faults the in-pipeline injectors cannot model: a worker
process SIGKILLed by the OOM killer, a worker wedged on one
pathological country, a box rebooting mid-run.  Without supervision
any of those aborts the whole campaign and throws away every country
already measured.

:class:`ShardSupervisor` owns a fleet of long-lived worker processes,
each connected to the parent by its own duplex pipe (no shared queue:
a worker killed mid-``put`` can corrupt a queue's lock, while a dead
pipe simply reads EOF).  The parent dispatches one ``(country,
attempt)`` task at a time to each worker and watches for three fault
shapes:

* **worker death** — the worker's pipe hits EOF or its process exits
  nonzero.  The in-flight country is resubmitted to a fresh worker.
* **hung shard** — a per-country wall-clock deadline
  (``country_timeout``) expires.  The worker is SIGKILLed and the
  country resubmitted.  Wall clock, not the logical clock: a wedged
  worker by definition stops advancing logical time.
* **in-pipeline error** — the worker caught an exception and reported
  it over the pipe.  Also resubmitted: the box-level conditions that
  produce spurious errors (fd exhaustion, memory pressure) often
  clear.

Resubmission is bounded and jittered: each country gets at most
``max_shard_retries`` extra dispatches, spaced by the same
decorrelated-jitter schedule the in-pipeline
:class:`~repro.faults.retry.RetryPolicy` uses (seeded per country, so
a thundering herd of failed shards does not resubmit in lockstep).
When the budget is exhausted the supervisor either aborts the campaign
(default — same observable behavior as before this module existed) or,
with ``quarantine=True``, records a :class:`~repro.pipeline.parallel.
CountryResult`-shaped tombstone and moves on, so the campaign always
terminates with the maximal valid subset of its output.  Tombstones
carry degraded-row semantics: zero rows, a recorded reason, a
``quarantined`` marker persisted in the store manifest — and a later
``--resume`` re-measures exactly the quarantined countries.

Because every country unit is a pure function of ``(spec, country)``,
none of this machinery can change output: a retried country produces
byte-identical rows/metrics/spans to a first-try success, so a
campaign that survives crashes converges to the same artifacts as one
that never saw them.  The test suite asserts exactly that under a
process-level chaos harness (:mod:`repro.faults.chaos`).
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as connection_wait
from typing import TYPE_CHECKING, Callable

from ..errors import PipelineError
from ..faults.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.chaos import ChaosPlan
    from ..obs.instrument import SupervisorTelemetry
    from ..obs.profile import CampaignProfiler
    from .parallel import CampaignSpec, CountryResult

__all__ = [
    "SupervisorPolicy",
    "ShardSupervisor",
    "quarantine_tombstone",
]


@dataclass(frozen=True, slots=True)
class SupervisorPolicy:
    """Fault-handling knobs for the sharded campaign supervisor.

    The defaults are deliberately no-ops on the happy path: no
    deadline, and the retry/backoff knobs only matter once something
    actually fails.  ``country_timeout`` is a *wall-clock* budget per
    country dispatch; ``max_shard_retries`` bounds resubmissions per
    country (on top of the first dispatch); ``quarantine`` turns
    budget exhaustion into a tombstone instead of a campaign abort.
    """

    country_timeout: float | None = None
    max_shard_retries: int = 2
    quarantine: bool = False
    #: Countries dispatched to a worker per pipe round trip.  None
    #: picks an automatic size that spreads the queue over roughly
    #: four dispatch rounds per worker (1 at small scales, so chunking
    #: only kicks in when there are enough countries to amortize).
    chunk_size: int | None = None
    #: Backoff before resubmitting a failed country, following the
    #: decorrelated-jitter recurrence of the in-pipeline RetryPolicy —
    #: but spent on the real clock (the supervisor has no logical one).
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0
    #: How often the supervisor wakes to check deadlines when no pipe
    #: is readable.
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.country_timeout is not None and self.country_timeout <= 0:
            raise PipelineError(
                f"country_timeout must be positive, got {self.country_timeout}"
            )
        if self.max_shard_retries < 0:
            raise PipelineError(
                f"max_shard_retries must be >= 0, got {self.max_shard_retries}"
            )
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise PipelineError(
                f"invalid backoff window [{self.backoff_base}, "
                f"{self.backoff_cap}]"
            )
        if self.poll_interval <= 0:
            raise PipelineError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise PipelineError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    def backoff_schedule(self, country: str) -> tuple[float, ...]:
        """Jittered resubmission delays for one country's retries."""
        if self.max_shard_retries == 0:
            return ()
        policy = RetryPolicy(
            max_attempts=self.max_shard_retries + 1,
            base_delay=self.backoff_base,
            max_delay=self.backoff_cap,
            seed=self.seed,
        )
        return policy.backoff_schedule(f"shard:{country}")


def quarantine_tombstone(country: str, reason: str) -> "CountryResult":
    """A CountryResult-shaped tombstone for a quarantined country.

    Degraded-row semantics taken to the limit: zero rows, no
    telemetry, and the failure reason recorded so manifests and
    reports can surface *why* the country is missing.
    """
    from .parallel import CountryResult

    return CountryResult(
        country=country,
        rows=(),
        metrics=None,
        spans=None,
        injected_faults=0,
        open_circuits=(),
        quarantined=reason,
    )


def _supervised_worker(
    spec: "CampaignSpec", chaos: "ChaosPlan | None", conn: Connection
) -> None:
    """Worker-process loop: measure country chunks until told to stop.

    Each task arrives as a tuple of ``(country, attempt)`` pairs — a
    locality-aware chunk — and the worker streams one message back per
    country as it finishes: ``("ok", country, attempt, CountryResult,
    timings)`` or ``("error", country, attempt, reason, None)``.  A
    per-country error does not abandon the rest of the chunk: the
    failed country is reported (the parent resubmits it) and the loop
    moves on to the next chunk member.  ``timings`` is the worker's
    own :func:`time.monotonic` readings around the country (processing
    start, World-build interval if this country triggered one, measure
    interval, send instant) — CLOCK_MONOTONIC is system-wide on Linux,
    so the parent-side profiler can place them on its own axis.  The
    chaos hooks are the test harness's seam for killing or wedging the
    process at deterministic points; they are no-ops in production.
    """
    from .parallel import measure_country_unit, pop_world_build, worker_context

    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                return
            if task is None:
                return
            for country, attempt in task:
                recv_at = time.monotonic()
                try:
                    if chaos is not None:
                        chaos.before_measure(country, attempt)
                    context = worker_context(spec)
                    build = pop_world_build()
                    measure_start = time.monotonic()
                    result = measure_country_unit(
                        context.world,
                        spec,
                        country,
                        zone_cache=context.zone_cache,
                    )
                    measure_end = time.monotonic()
                    if chaos is not None:
                        chaos.after_measure(country, attempt)
                    timings = {
                        "recv": recv_at,
                        "build": build,
                        "measure": (measure_start, measure_end),
                        "send": time.monotonic(),
                    }
                    conn.send(("ok", country, attempt, result, timings))
                except BaseException as exc:  # noqa: BLE001 - report, don't die
                    try:
                        conn.send(
                            (
                                "error",
                                country,
                                attempt,
                                f"{type(exc).__name__}: {exc}",
                                None,
                            )
                        )
                    except (BrokenPipeError, OSError):
                        return
    finally:
        conn.close()


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("process", "conn", "chunk", "deadline", "label", "token")

    def __init__(self, process, conn: Connection, label: str) -> None:
        self.process = process
        self.conn = conn
        #: Outstanding ``(country, attempt)`` pairs of the dispatched
        #: chunk, in the order the worker processes them; ``chunk[0]``
        #: is in flight, the rest are queued worker-side.  Empty when
        #: idle.
        self.chunk: list[tuple[str, int]] = []
        #: Wall-clock instant the in-flight country times out (None
        #: when idle or no country_timeout configured); reset as each
        #: chunk member's result arrives, so the budget stays
        #: per-country under chunking.
        self.deadline: float | None = None
        #: Stable profiling label ("w0", "w1", ...) — a replacement
        #: process inherits its predecessor's label, so a worker
        #: timeline survives crashes.
        self.label = label
        #: Profiler token for the in-flight country's dispatch span
        #: (None when idle or unprofiled).  Tokens open lazily — one
        #: per country, at the instant it becomes the chunk head — so
        #: per-country dispatch spans survive chunked dispatch.
        self.token: int | None = None


class ShardSupervisor:
    """Run a campaign's country shards under crash/hang supervision.

    Drives ``workers`` long-lived processes over per-worker pipes,
    dispatching countries in sorted order and resubmitting failures
    per the :class:`SupervisorPolicy`.  Purely an orchestration layer:
    results (and the merge the caller performs on them) are identical
    to the unsupervised executor's whenever nothing fails.
    """

    def __init__(
        self,
        spec: "CampaignSpec",
        countries: list[str],
        workers: int,
        policy: SupervisorPolicy,
        *,
        chaos: "ChaosPlan | None" = None,
        telemetry: "SupervisorTelemetry | None" = None,
        profiler: "CampaignProfiler | None" = None,
        mp_context=None,
    ) -> None:
        self.spec = spec
        self.countries = list(countries)
        self.worker_count = max(1, min(workers, len(self.countries) or 1))
        self.policy = policy
        self.chaos = chaos
        self.telemetry = telemetry
        self.profiler = profiler
        self._context = (
            mp_context if mp_context is not None else multiprocessing
        )
        #: country -> (attempt, wall-clock instant it may be dispatched)
        self._pending: dict[str, tuple[int, float]] = {}
        self._results: dict[str, "CountryResult"] = {}
        self._workers: list[_Worker] = []
        self._halted = False

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn_worker(self, label: str) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_supervised_worker,
            args=(self.spec, self.chaos, child_conn),
            daemon=True,
        )
        spawn_start = time.monotonic()
        process.start()
        if self.profiler is not None:
            self.profiler.worker_spawned(
                label, spawn_start, time.monotonic()
            )
        # Close the parent's copy of the child end: otherwise the pipe
        # never reads EOF when the worker dies.
        child_conn.close()
        return _Worker(process, parent_conn, label)

    def _retire_worker(self, worker: _Worker) -> None:
        """Tear one worker down hard (it is dead or being killed)."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)

    def _replace_worker(self, worker: _Worker) -> None:
        self._retire_worker(worker)
        index = self._workers.index(worker)
        self._workers[index] = self._spawn_worker(worker.label)

    def _shutdown(self) -> None:
        for worker in self._workers:
            if worker.process.is_alive() and not worker.chunk:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            worker.process.join(timeout=0.5)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
        self._workers = []

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def _task_failed(
        self,
        country: str,
        attempt: int,
        reason: str,
        detail: str,
        note: Callable[["CountryResult"], bool],
    ) -> None:
        """One dispatch of a country failed; resubmit or quarantine."""
        if self.telemetry is not None:
            if reason == "timeout":
                self.telemetry.shard_timeout(country)
        if attempt <= self.policy.max_shard_retries:
            delays = self.policy.backoff_schedule(country)
            delay = delays[min(attempt - 1, len(delays) - 1)] if delays else 0.0
            now = time.monotonic()
            self._pending[country] = (attempt + 1, now + delay)
            if self.telemetry is not None:
                self.telemetry.shard_retry(country, reason)
            if self.profiler is not None:
                self.profiler.backoff(country, reason, now, now + delay)
            return
        message = (
            f"country {country} failed {attempt} dispatch"
            f"{'es' if attempt != 1 else ''} ({reason}: {detail})"
        )
        if not self.policy.quarantine:
            raise PipelineError(
                f"{message}; raise --max-shard-retries or pass "
                f"--quarantine to tombstone the country and keep going"
            )
        tombstone = quarantine_tombstone(country, f"{reason}: {detail}")
        self._results[country] = tombstone
        if self.telemetry is not None:
            self.telemetry.quarantined(country, reason)
        if note(tombstone):
            self._halted = True

    def _worker_died(
        self, worker: _Worker, note: Callable[["CountryResult"], bool]
    ) -> None:
        worker.process.join(timeout=5.0)
        exitcode = worker.process.exitcode
        chunk = list(worker.chunk)
        if (
            chunk
            and self.profiler is not None
            and worker.token is not None
        ):
            self.profiler.failed(worker.token, time.monotonic(), "crash")
        self._replace_worker(worker)
        if not chunk:
            return
        self._requeue_chunk_mates(chunk[1:])
        country, attempt = chunk[0]
        self._task_failed(
            country,
            attempt,
            "crash",
            f"worker exited with code {exitcode}",
            note,
        )

    def _requeue_chunk_mates(
        self, mates: list[tuple[str, int]]
    ) -> None:
        """Requeue the not-yet-started members of a failed chunk.

        Only the in-flight head caused (or suffered) the failure; its
        chunk-mates never started, so they go back to the ready queue
        at the *same* attempt — no retry-budget penalty, no backoff
        (their profiler queue-wait simply keeps running, since their
        dispatch tokens are opened lazily).
        """
        now = time.monotonic()
        for country, attempt in mates:
            self._pending[country] = (attempt, now)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _chunk_size(self) -> int:
        """Countries per dispatch round trip.

        The automatic size spreads the campaign over roughly four
        dispatch rounds per worker: enough chunking to amortize pipe
        latency at paper scale, enough rounds to keep the tail
        balanced.  It evaluates to 1 until the country count outgrows
        ``4 × workers``, so small campaigns keep one-at-a-time
        dispatch.
        """
        if self.policy.chunk_size is not None:
            return self.policy.chunk_size
        return max(
            1, math.ceil(len(self.countries) / (self.worker_count * 4))
        )

    def _dispatch_ready(self, now: float) -> None:
        idle = [w for w in self._workers if not w.chunk]
        if not idle:
            return
        ready = sorted(
            cc
            for cc, (_attempt, ready_at) in self._pending.items()
            if ready_at <= now
        )
        size = self._chunk_size()
        for worker in idle:
            if not ready:
                break
            # Contiguous slice of the sorted ready list: neighbouring
            # countries ship together, preserving the sorted dispatch
            # order the serial run and merge both use.
            take, ready = ready[:size], ready[size:]
            chunk = [
                (cc, self._pending.pop(cc)[0]) for cc in take
            ]
            try:
                worker.conn.send(tuple(chunk))
            except (BrokenPipeError, OSError):
                # Worker died while idle; put the tasks back and bring
                # up a replacement immediately.
                for country, attempt in chunk:
                    self._pending[country] = (attempt, now)
                self._replace_worker(worker)
                continue
            worker.chunk = chunk
            worker.deadline = (
                now + self.policy.country_timeout
                if self.policy.country_timeout is not None
                else None
            )
            if self.profiler is not None:
                country, attempt = chunk[0]
                worker.token = self.profiler.dispatched(
                    worker.label,
                    country,
                    attempt,
                    time.monotonic(),
                    len(self._pending),
                )

    def _wait_budget(self, now: float) -> float:
        budget = self.policy.poll_interval
        for worker in self._workers:
            if worker.deadline is not None:
                budget = min(budget, max(worker.deadline - now, 0.0))
        for _attempt, ready_at in self._pending.values():
            budget = min(budget, max(ready_at - now, 0.0))
        return budget

    def run(
        self, note: Callable[["CountryResult"], bool]
    ) -> tuple[dict[str, "CountryResult"], bool]:
        """Measure every country; returns ``(results, halted)``.

        ``note`` is invoked for every finished unit (fresh result or
        quarantine tombstone) in completion order — the caller's
        checkpoint hook; returning True halts the campaign (the
        ``--halt-after`` contract).  ``results`` maps country to its
        unit (tombstones included) unless halted early.
        """
        self._pending = {cc: (1, 0.0) for cc in self.countries}
        self._results = {}
        self._halted = False
        if self.profiler is not None:
            enqueue_at = time.monotonic()
            for cc in self.countries:
                self.profiler.enqueued(cc, enqueue_at)
        self._workers = [
            self._spawn_worker(f"w{i}") for i in range(self.worker_count)
        ]
        try:
            while (
                len(self._results) < len(self.countries)
                and not self._halted
            ):
                now = time.monotonic()
                self._dispatch_ready(now)
                busy = {
                    w.conn: w for w in self._workers if w.chunk
                }
                if not busy and not self._pending:
                    # Nothing in flight and nothing schedulable: every
                    # remaining country is already resolved.
                    break
                if busy:
                    readable = connection_wait(
                        list(busy), timeout=self._wait_budget(now)
                    )
                else:
                    time.sleep(self._wait_budget(now))
                    readable = []
                for conn in readable:
                    worker = busy[conn]
                    # Drain every streamed chunk result already on the
                    # pipe — a chunked worker can land several results
                    # between two wakeups.
                    while worker.chunk:
                        try:
                            message = conn.recv()
                        except (EOFError, OSError):
                            self._worker_died(worker, note)
                            break
                        kind, country, attempt, payload, timings = message
                        pair = (country, attempt)
                        if worker.chunk and worker.chunk[0] == pair:
                            worker.chunk.pop(0)
                        elif pair in worker.chunk:  # pragma: no cover
                            worker.chunk.remove(pair)
                        arrived = time.monotonic()
                        token, worker.token = worker.token, None
                        if kind == "ok":
                            if (
                                self.profiler is not None
                                and token is not None
                            ):
                                self.profiler.completed(
                                    token, arrived, timings
                                )
                            self._results[country] = payload
                            if note(payload):
                                self._halted = True
                                break
                        else:
                            if (
                                self.profiler is not None
                                and token is not None
                            ):
                                self.profiler.failed(
                                    token, arrived, "error"
                                )
                            self._task_failed(
                                country, attempt, "error", payload, note
                            )
                        if self._halted:
                            break
                        if worker.chunk:
                            # The next chunk member is now in flight:
                            # restart its per-country deadline and open
                            # its dispatch span.
                            worker.deadline = (
                                arrived + self.policy.country_timeout
                                if self.policy.country_timeout is not None
                                else None
                            )
                            if self.profiler is not None:
                                head, head_attempt = worker.chunk[0]
                                worker.token = self.profiler.dispatched(
                                    worker.label,
                                    head,
                                    head_attempt,
                                    arrived,
                                    len(self._pending),
                                )
                        else:
                            worker.deadline = None
                        if not conn.poll():
                            break
                    if self._halted:
                        break
                if self._halted:
                    break
                now = time.monotonic()
                for worker in list(self._workers):
                    if (
                        worker.chunk
                        and worker.deadline is not None
                        and now >= worker.deadline
                    ):
                        chunk = list(worker.chunk)
                        country, attempt = chunk[0]
                        if (
                            self.profiler is not None
                            and worker.token is not None
                        ):
                            self.profiler.failed(
                                worker.token, now, "timeout"
                            )
                        self._replace_worker(worker)
                        self._requeue_chunk_mates(chunk[1:])
                        self._task_failed(
                            country,
                            attempt,
                            "timeout",
                            f"exceeded the {self.policy.country_timeout:g}s "
                            f"wall-clock country deadline",
                            note,
                        )
                    elif (
                        worker.chunk
                        and not worker.process.is_alive()
                        and not worker.conn.poll()
                    ):
                        # Exited without writing a result (covers the
                        # rare case where EOF was consumed elsewhere).
                        self._worker_died(worker, note)
        finally:
            self._shutdown()
        return dict(self._results), self._halted
