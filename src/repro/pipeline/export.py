"""Dataset export/import: the study's data release.

The paper releases its per-site dependence data; this module provides
the equivalent for a measured dataset — a documented CSV schema for the
per-site records, a compact JSON summary of per-country scores, and
lossless round-trip loading so downstream users can analyze a release
without rebuilding the world.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..core.centralization import centralization_score
from ..datasets.paper_scores import LAYERS
from ..errors import PipelineError
from ..net.addressing import int_to_ip, ip_to_int
from .records import MeasurementDataset, WebsiteMeasurement

__all__ = [
    "CSV_FIELDS",
    "export_csv",
    "load_csv",
    "export_summary_json",
]

#: The released per-site schema, in column order.
CSV_FIELDS: tuple[str, ...] = (
    "country",
    "rank",
    "domain",
    "ip",
    "hosting_org",
    "hosting_org_country",
    "ip_country",
    "ip_continent",
    "ip_anycast",
    "dns_org",
    "dns_org_country",
    "ns_continent",
    "ns_anycast",
    "ca_owner",
    "ca_country",
    "tld",
    "language",
    "error",
)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def export_csv(dataset: MeasurementDataset, path: str | Path) -> int:
    """Write the per-site records to CSV; returns the row count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for record in dataset:
            writer.writerow(
                [
                    record.country,
                    record.rank,
                    record.domain,
                    int_to_ip(record.ip) if record.ip is not None else "",
                    _cell(record.hosting_org),
                    _cell(record.hosting_org_country),
                    _cell(record.ip_country),
                    _cell(record.ip_continent),
                    _cell(record.ip_anycast),
                    _cell(record.dns_org),
                    _cell(record.dns_org_country),
                    _cell(record.ns_continent),
                    _cell(record.ns_anycast),
                    _cell(record.ca_owner),
                    _cell(record.ca_country),
                    _cell(record.tld),
                    _cell(record.language),
                    _cell(record.error),
                ]
            )
            rows += 1
    return rows


def _parse(value: str) -> str | None:
    return value if value else None


def load_csv(path: str | Path) -> MeasurementDataset:
    """Load a released CSV back into a dataset (inverse of export)."""
    path = Path(path)
    dataset = MeasurementDataset()
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != CSV_FIELDS:
            raise PipelineError(
                f"{path} does not match the release schema; expected "
                f"header {CSV_FIELDS}"
            )
        for row in reader:
            if len(row) != len(CSV_FIELDS):
                raise PipelineError(
                    f"{path}: malformed row with {len(row)} cells"
                )
            values = dict(zip(CSV_FIELDS, row))
            dataset.add(
                WebsiteMeasurement(
                    domain=values["domain"],
                    country=values["country"],
                    rank=int(values["rank"]),
                    ip=(
                        ip_to_int(values["ip"]) if values["ip"] else None
                    ),
                    hosting_org=_parse(values["hosting_org"]),
                    hosting_org_country=_parse(
                        values["hosting_org_country"]
                    ),
                    ip_country=_parse(values["ip_country"]),
                    ip_continent=_parse(values["ip_continent"]),
                    ip_anycast=values["ip_anycast"] == "1",
                    dns_org=_parse(values["dns_org"]),
                    dns_org_country=_parse(values["dns_org_country"]),
                    ns_continent=_parse(values["ns_continent"]),
                    ns_anycast=values["ns_anycast"] == "1",
                    ca_owner=_parse(values["ca_owner"]),
                    ca_country=_parse(values["ca_country"]),
                    tld=_parse(values["tld"]),
                    language=_parse(values["language"]),
                    error=_parse(values["error"]),
                )
            )
    return dataset


def export_summary_json(
    dataset: MeasurementDataset, path: str | Path
) -> dict:
    """Write per-country, per-layer scores and insularity to JSON.

    Returns the summary object that was written.
    """
    from ..analysis.layers import LayerAnalysis

    summary: dict = {"countries": {}, "layers": list(LAYERS)}
    analyses = {layer: LayerAnalysis(dataset, layer) for layer in LAYERS}
    for cc in dataset.countries:
        entry: dict = {}
        for layer, analysis in analyses.items():
            entry[layer] = {
                "centralization": centralization_score(
                    analysis.distribution(cc)
                ),
                "insularity": analysis.insularity[cc],
                "providers": analysis.distribution(cc).n_providers,
            }
        summary["countries"][cc] = entry
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True))
    return summary
