"""Dataset export/import: the study's data release.

The paper releases its per-site dependence data; this module provides
the equivalent for a measured dataset — a documented CSV schema for the
per-site records, a compact JSON summary of per-country scores, and
lossless round-trip loading so downstream users can analyze a release
without rebuilding the world.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable
from pathlib import Path

from ..core.centralization import centralization_score
from ..datasets.paper_scores import LAYERS
from ..errors import PipelineError
from ..net.addressing import int_to_ip, ip_to_int
from .records import MeasurementDataset, WebsiteMeasurement

__all__ = [
    "CSV_FIELDS",
    "LEGACY_CSV_FIELDS",
    "export_csv",
    "load_csv",
    "rows_to_csv_text",
    "rows_from_csv_text",
    "export_summary_json",
]

#: The original (v1) release schema, still accepted on load.
LEGACY_CSV_FIELDS: tuple[str, ...] = (
    "country",
    "rank",
    "domain",
    "ip",
    "hosting_org",
    "hosting_org_country",
    "ip_country",
    "ip_continent",
    "ip_anycast",
    "dns_org",
    "dns_org_country",
    "ns_continent",
    "ns_anycast",
    "ca_owner",
    "ca_country",
    "tld",
    "language",
    "error",
)

#: The released per-site schema, in column order.  Extends the legacy
#: schema with the per-layer resilience columns; old releases load via
#: :data:`LEGACY_CSV_FIELDS` with defaults for the new columns.
CSV_FIELDS: tuple[str, ...] = LEGACY_CSV_FIELDS + (
    "dns_error",
    "tls_error",
    "attempts",
    "degraded",
)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def _record_row(record: WebsiteMeasurement) -> list[str]:
    return [
        record.country,
        str(record.rank),
        record.domain,
        int_to_ip(record.ip) if record.ip is not None else "",
        _cell(record.hosting_org),
        _cell(record.hosting_org_country),
        _cell(record.ip_country),
        _cell(record.ip_continent),
        _cell(record.ip_anycast),
        _cell(record.dns_org),
        _cell(record.dns_org_country),
        _cell(record.ns_continent),
        _cell(record.ns_anycast),
        _cell(record.ca_owner),
        _cell(record.ca_country),
        _cell(record.tld),
        _cell(record.language),
        _cell(record.error),
        _cell(record.dns_error),
        _cell(record.tls_error),
        str(record.attempts),
        _cell(record.degraded),
    ]


def rows_to_csv_text(records: Iterable[WebsiteMeasurement]) -> str:
    """Render records as release-schema CSV text (header included).

    The single serialization used everywhere a record crosses a byte
    boundary — file exports and campaign-store shards alike — so that
    the store's resume/reuse paths are byte-identical to a fresh export
    by construction.
    """
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(CSV_FIELDS)
    for record in records:
        writer.writerow(_record_row(record))
    return buffer.getvalue()


def export_csv(dataset: MeasurementDataset, path: str | Path) -> int:
    """Write the per-site records to CSV; returns the row count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for record in dataset:
            writer.writerow(_record_row(record))
            rows += 1
    return rows


def _parse(value: str) -> str | None:
    return value if value else None


def _record_from_values(values: dict[str, str]) -> WebsiteMeasurement:
    return WebsiteMeasurement(
        domain=values["domain"],
        country=values["country"],
        rank=int(values["rank"]),
        ip=(ip_to_int(values["ip"]) if values["ip"] else None),
        hosting_org=_parse(values["hosting_org"]),
        hosting_org_country=_parse(values["hosting_org_country"]),
        ip_country=_parse(values["ip_country"]),
        ip_continent=_parse(values["ip_continent"]),
        ip_anycast=values["ip_anycast"] == "1",
        dns_org=_parse(values["dns_org"]),
        dns_org_country=_parse(values["dns_org_country"]),
        ns_continent=_parse(values["ns_continent"]),
        ns_anycast=values["ns_anycast"] == "1",
        ca_owner=_parse(values["ca_owner"]),
        ca_country=_parse(values["ca_country"]),
        tld=_parse(values["tld"]),
        language=_parse(values["language"]),
        error=_parse(values["error"]),
        dns_error=_parse(values.get("dns_error", "")),
        tls_error=_parse(values.get("tls_error", "")),
        attempts=int(values.get("attempts", "0") or "0"),
        degraded=values.get("degraded", "0") == "1",
    )


def _parse_csv(
    reader: Iterable[list[str]], source: str
) -> Iterable[WebsiteMeasurement]:
    iterator = iter(reader)
    header = next(iterator, None)
    if header is not None and tuple(header) == CSV_FIELDS:
        fields = CSV_FIELDS
    elif header is not None and tuple(header) == LEGACY_CSV_FIELDS:
        fields = LEGACY_CSV_FIELDS
    else:
        raise PipelineError(
            f"{source} does not match the release schema; expected "
            f"header {CSV_FIELDS} (or the legacy "
            f"{len(LEGACY_CSV_FIELDS)}-column schema)"
        )
    for row in iterator:
        if len(row) != len(fields):
            raise PipelineError(
                f"{source}: malformed row with {len(row)} cells"
            )
        yield _record_from_values(dict(zip(fields, row)))


def rows_from_csv_text(text: str) -> tuple[WebsiteMeasurement, ...]:
    """Parse release-schema CSV text (inverse of rows_to_csv_text)."""
    reader = csv.reader(io.StringIO(text, newline=""))
    return tuple(_parse_csv(reader, "csv text"))


def load_csv(path: str | Path) -> MeasurementDataset:
    """Load a released CSV back into a dataset (inverse of export).

    Accepts both the current schema and the legacy (pre-resilience)
    schema; legacy rows load with default resilience columns.
    """
    path = Path(path)
    dataset = MeasurementDataset()
    with path.open(newline="", encoding="utf-8") as handle:
        for record in _parse_csv(csv.reader(handle), str(path)):
            dataset.add(record)
    return dataset


def export_summary_json(
    dataset: MeasurementDataset, path: str | Path
) -> dict:
    """Write per-country, per-layer scores and insularity to JSON.

    Returns the summary object that was written.
    """
    from ..analysis.layers import LayerAnalysis

    summary: dict = {"countries": {}, "layers": list(LAYERS)}
    analyses = {layer: LayerAnalysis(dataset, layer) for layer in LAYERS}
    for cc in dataset.countries:
        entry: dict = {}
        for layer, analysis in analyses.items():
            entry[layer] = {
                "centralization": centralization_score(
                    analysis.distribution(cc)
                ),
                "insularity": analysis.insularity[cc],
                "providers": analysis.distribution(cc).n_providers,
            }
        summary["countries"][cc] = entry
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True))
    return summary
