"""Vantage-point validation (Section 3.4).

The paper validates that measuring from Stanford does not skew results:
it re-resolves each country's toplist through RIPE Atlas probes located
*in* that country and checks that the recomputed hosting centralization
scores correlate strongly (rho = 0.96) with the Stanford-based ones.

Here each country's probe measurement uses a resolver whose vantage
continent is the country's own continent, so geo-routed (CDN) answers —
and the occasional multi-CDN site — differ from the North American
view, producing realistic, slightly-divergent scores.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.centralization import centralization_score
from ..core.correlation import CorrelationResult, pearson
from ..datasets.countries import COUNTRIES
from ..pipeline.measure import STANFORD_VANTAGE_CONTINENT, MeasurementPipeline
from ..worldgen.world import World
from .records import MeasurementDataset

__all__ = ["VantageComparison", "ripe_style_dataset", "validate_vantage"]


@dataclass(frozen=True, slots=True)
class VantageComparison:
    """Per-country hosting scores from two vantage strategies."""

    countries: tuple[str, ...]
    stanford_scores: tuple[float, ...]
    probe_scores: tuple[float, ...]
    correlation: CorrelationResult


def ripe_style_dataset(
    world: World, countries: list[str] | None = None
) -> MeasurementDataset:
    """Measure each country through a probe on its own continent.

    Countries without a local RIPE presence in the paper fell back to
    random probes; here every country has a continent-local vantage,
    which is the stronger (more divergent) test.
    """
    targets = countries if countries is not None else sorted(world.toplists)
    combined = MeasurementDataset(vantage_continent=None)
    for cc in targets:
        pipeline = MeasurementPipeline(
            world,
            vantage_continent=COUNTRIES[cc].continent,
            vantage_country=cc,
            measure_tls=False,
        )
        combined.extend(pipeline.measure_country(cc))
    return combined


def validate_vantage(
    world: World,
    stanford: MeasurementDataset | None = None,
    countries: list[str] | None = None,
) -> VantageComparison:
    """Reproduce the Section 3.4 vantage-point experiment."""
    targets = countries if countries is not None else sorted(world.toplists)
    if stanford is None:
        stanford = MeasurementPipeline(
            world,
            vantage_continent=STANFORD_VANTAGE_CONTINENT,
            measure_tls=False,
        ).run(targets)
    probes = ripe_style_dataset(world, targets)
    stanford_scores = tuple(
        centralization_score(stanford.distribution(cc, "hosting"))
        for cc in targets
    )
    probe_scores = tuple(
        centralization_score(probes.distribution(cc, "hosting"))
        for cc in targets
    )
    return VantageComparison(
        countries=tuple(targets),
        stanford_scores=stanford_scores,
        probe_scores=probe_scores,
        correlation=pearson(stanford_scores, probe_scores),
    )
