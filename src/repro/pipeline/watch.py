"""Crash-safe longitudinal watcher: ``repro watch``.

The driver behind continuous measurement: evolve the world one churn
step per epoch, measure each epoch incrementally through the campaign
store's ``--since`` machinery (unchurned countries reuse their stored
shards byte-identically), and append each finished epoch to a durable
series ledger (:mod:`repro.store.series`).  One watch invocation runs
epochs ``len(ledger)..epochs-1``; ``--resume-series`` is the same call
against a store that already holds part of the series.

Durability model (DESIGN.md §14 is the full failure matrix):

* **Signals.**  :class:`GracefulShutdown` converts the first
  SIGTERM/SIGINT into a cooperative stop flag; the campaign's
  ``should_halt`` hook sees it after the *next country checkpoint*, so
  nothing measured is ever lost.  The watch stops the series between
  durable steps and reports ``interrupted`` (CLI exit 6).  A second
  signal raises ``KeyboardInterrupt`` — the operator's escape hatch.
* **Kills.**  Every step between ledger appends is idempotent or
  replayable: a kill anywhere loses at most in-flight country units,
  and a resumed series converges to the byte-identical ledger and
  epoch artifacts (the integration suite batters every phase).
* **Quota.**  ``store_quota_bytes`` bounds the series' live payload.
  The planner is deterministic — it sees only prior ledger entries
  plus the current epoch's object list, never the disk — and retires
  oldest epochs first by dropping their manifests, then sweeps with
  the shared :meth:`~repro.store.store.CampaignStore.gc`.  When the
  quota cannot be met even after retiring everything retirable, the
  epoch records ``quota_met=false`` and the series continues
  (skip-and-record, never a crash).
* **Deadlines.**  ``epoch_deadline`` seconds of wall clock per epoch;
  a blown epoch is tombstoned ``degraded:deadline`` in the ledger and
  never retried — a wedged epoch must not block the series.

Quota accounting covers the ``objects/`` payload bytes of the series'
live epochs: object sizes are deterministic (canonical JSON, written
once), which keeps retirement decisions — and therefore the ledger —
independent of kill placement.  Index entries, manifests, ledgers,
and telemetry artifacts are small and non-deterministic across
battered runs, so they are deliberately outside the accounted set;
foreign campaigns sharing the store are not the watcher's to delete
and are likewise uncounted.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import PipelineError
from ..obs.instrument import WatchTelemetry
from ..worldgen.churn import ChurnConfig
from .export import export_csv
from .parallel import CampaignHalted, CampaignSpec, run_campaign
from .supervisor import SupervisorPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.chaos import WatchChaosPlan
    from ..store.store import CampaignStore

__all__ = [
    "GracefulShutdown",
    "WatchSpec",
    "WatchReport",
    "plan_retirement",
    "run_watch",
]


class GracefulShutdown:
    """Convert SIGTERM/SIGINT into a cooperative checkpoint-then-exit.

    A context manager installing handlers that set a flag instead of
    dying: the campaign runner polls :meth:`requested` after every
    country checkpoint, so the response to a signal is always "finish
    the unit in flight, persist it, stop cleanly".  The second signal
    raises :class:`KeyboardInterrupt` — if graceful isn't happening,
    the operator can still force it.  Handlers are restored on exit,
    so nesting a watch inside other signal-aware tooling is safe.
    """

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self) -> None:
        self._signum: int | None = None
        self._previous: dict[int, object] = {}

    def __enter__(self) -> "GracefulShutdown":
        for signum in self.SIGNALS:
            self._previous[signum] = signal.signal(
                signum, self._handle
            )
        return self

    def __exit__(self, *exc_info: object) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()

    def _handle(self, signum: int, frame: object) -> None:
        if self._signum is not None:
            raise KeyboardInterrupt
        self._signum = signum

    def requested(self) -> bool:
        """True once a shutdown signal has been received."""
        return self._signum is not None

    @property
    def signal_name(self) -> str | None:
        """The received signal's name (None before any signal)."""
        if self._signum is None:
            return None
        return signal.Signals(self._signum).name


@dataclass(frozen=True)
class WatchSpec:
    """A longitudinal watch: base campaign + one churn step per epoch.

    Series *identity* is the pair ``(spec, churn)`` — the operational
    knobs (target epoch count, quota, deadline, worker count) can
    change between sessions of the same series.  Convergence testing
    holds them fixed, since quota decisions are recorded in the
    ledger.
    """

    spec: CampaignSpec
    #: Total epochs the series should reach (epoch 0 is the base
    #: world; epoch N is N churn steps).  A resumed watch with a
    #: larger target extends the same series.
    epochs: int
    #: The per-epoch churn recipe.  Its ``new_snapshot`` is overridden
    #: per step (``<base>+e<i>``) so every epoch names its snapshot.
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    #: Retention budget for the series' live ``objects/`` payload.
    store_quota_bytes: int | None = None
    #: Wall-clock budget per epoch; a blown epoch is tombstoned.
    epoch_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise PipelineError("a watch needs at least one epoch")
        if self.spec.churn is not None:
            raise PipelineError(
                "the watch owns world evolution; pass a base spec "
                "with churn=None and set WatchSpec.churn instead"
            )
        if (
            self.store_quota_bytes is not None
            and self.store_quota_bytes < 1
        ):
            raise PipelineError("store quota must be positive bytes")
        if self.epoch_deadline is not None and self.epoch_deadline <= 0:
            raise PipelineError("epoch deadline must be positive")

    def epoch_churn(self, step: int) -> ChurnConfig:
        """The churn recipe for evolution step ``step`` (1-based)."""
        return replace(
            self.churn,
            new_snapshot=f"{self.spec.config.snapshot}+e{step}",
        )

    def epoch_spec(self, epoch: int) -> CampaignSpec:
        """The campaign spec measuring epoch ``epoch`` of the series."""
        if epoch == 0:
            return self.spec
        return replace(
            self.spec,
            churn=tuple(
                self.epoch_churn(step) for step in range(1, epoch + 1)
            ),
        )

    def recipe(self) -> dict:
        """The series identity payload the ledger is addressed by."""
        import dataclasses

        from ..store.digest import spec_fingerprint

        step = dataclasses.asdict(self.churn)
        # Per-step snapshots are derived (``<base>+e<i>``), so the
        # recipe drops the field — a watch's identity must not depend
        # on the template recipe's incidental snapshot name.
        step.pop("new_snapshot", None)
        if step.get("churn_countries") is not None:
            step["churn_countries"] = list(step["churn_countries"])
        return {
            "spec": spec_fingerprint(self.spec),
            "churn_step": step,
        }


@dataclass(frozen=True)
class WatchReport:
    """What one watch session did and where the series stands."""

    series: str
    #: Epochs now in the ledger (across all sessions).
    epochs_recorded: int
    #: The series' target epoch count this session ran toward.
    epochs_target: int
    #: Epochs this session measured and appended.
    ran: tuple[int, ...]
    #: Ledger status per recorded epoch.
    statuses: tuple[str, ...]
    #: Signal name when a graceful shutdown stopped the session.
    interrupted: str | None
    #: Epochs retired by quota GC (across the whole ledger).
    retired: tuple[int, ...]
    #: Epochs recorded with an unmet quota.
    quota_unmet: tuple[int, ...]
    #: This session's watch-telemetry payload (already merged into
    #: the series artifact).
    metrics: dict
    #: Observed ``objects/`` bytes after the last epoch's GC (a
    #: wall-truth reading for the report; never written to the ledger).
    store_bytes: int

    @property
    def complete(self) -> bool:
        """True when the ledger has reached the target epoch count."""
        return self.epochs_recorded >= self.epochs_target

    @property
    def degraded(self) -> tuple[int, ...]:
        """Epochs recorded with a degraded status."""
        return tuple(
            epoch
            for epoch, status in enumerate(self.statuses)
            if status != "ok"
        )

    def exit_code(self) -> int:
        """The CLI exit code this session's outcome maps to.

        0 clean and complete; 6 interrupted by a signal (resume with
        ``--resume-series``); 7 complete but with degraded epochs or
        unmet quotas recorded.
        """
        if self.interrupted is not None:
            return 6
        if self.degraded or self.quota_unmet:
            return 7
        return 0


def _objects_of(manifest: dict, store: "CampaignStore") -> list:
    """Sorted ``[digest, bytes]`` pairs for a manifest's shards.

    Sizes come from the object files themselves — deterministic,
    because objects are canonical JSON written once — so the list is
    identical no matter which session (battered or clean) records it.
    """
    digests = sorted(
        {
            entry["object"]
            for entry in manifest.get("countries", {}).values()
            if entry.get("object")
        }
    )
    objects = []
    for digest in digests:
        size = store.object_size(digest)
        if size is None:
            raise PipelineError(
                f"manifest references missing object {digest[:16]} "
                f"while recording the epoch; run `repro campaigns "
                f"fsck --repair`"
            )
        objects.append([digest, size])
    return objects


def plan_retirement(
    prior_entries: list[dict],
    current_objects: list,
    quota_bytes: int | None,
    pressure_bytes: int = 0,
) -> tuple[list[int], bool]:
    """Decide which prior epochs quota GC retires this epoch.

    Pure planning over ledger state: prior entries contribute their
    recorded object lists (shared digests count once — unchurned
    epochs share most of their shards), the current epoch contributes
    its own, and the oldest live epoch is retired until the union fits
    the quota.  The current epoch is never retired.  Returns
    ``(retired_epochs, quota_met)``.

    Determinism is the point: replaying the same ledger prefix and the
    same current object list yields the same decision, so a kill
    between planning and sweeping changes nothing — the resumed
    session re-plans identically and the sweep is idempotent.
    """
    if quota_bytes is None:
        return [], True
    already_retired: set[int] = set()
    for entry in prior_entries:
        already_retired.update(entry["retired"])
    live = [
        entry
        for entry in prior_entries
        if entry["epoch"] not in already_retired
    ]
    retired: list[int] = []
    while True:
        union: dict[str, int] = {}
        for entry in live:
            union.update(
                {digest: size for digest, size in entry["objects"]}
            )
        union.update(
            {digest: size for digest, size in current_objects}
        )
        total = sum(union.values()) + pressure_bytes
        if total <= quota_bytes:
            return retired, True
        if not live:
            return retired, False
        victim = live.pop(0)
        retired.append(victim["epoch"])


def run_watch(
    watch: WatchSpec,
    store: "CampaignStore",
    *,
    workers: int = 1,
    resume: bool = False,
    export_dir: str | Path | None = None,
    policy: SupervisorPolicy | None = None,
    chaos: "WatchChaosPlan | None" = None,
) -> WatchReport:
    """Drive a longitudinal series to its target epoch count.

    Runs epochs ``len(ledger)..watch.epochs-1``, each one a full
    campaign with store checkpointing and shard reuse against the
    newest live ``ok`` epoch.  ``resume=False`` refuses to touch a
    series that already has entries (the operator must say
    ``--resume-series``); with ``resume=True`` the call picks up
    mid-epoch (via shard-level resume) or mid-series (via the ledger).
    ``export_dir`` writes one ``epoch-<n>.csv`` per fully measured
    epoch.  ``chaos`` is the watcher-level fault injector — a testing
    hook, exactly like the campaign runner's.
    """
    from ..store.series import SeriesLedger

    ledger = SeriesLedger(store, watch.recipe())
    if ledger.entries and not resume:
        raise PipelineError(
            f"series {ledger.series[:16]} already has "
            f"{len(ledger.entries)} epochs in {store.root}; pass "
            f"--resume-series to continue it"
        )
    telemetry = WatchTelemetry()
    telemetry.session("resume" if ledger.entries else "fresh")
    # Replay half-executed retirement: the ledger records retirement
    # decisions *before* manifests are deleted and objects swept, so a
    # kill inside the GC window leaves victims whose manifests (or
    # orphaned objects) are still on disk.  Execution is idempotent —
    # finish it before measuring anything.
    if ledger.retired_epochs():
        campaigns_by_epoch = {
            entry["epoch"]: entry["campaign"]
            for entry in ledger.entries
        }
        replayed = False
        for victim in ledger.retired_epochs():
            replayed |= store.delete_manifest(campaigns_by_epoch[victim])
        if replayed or resume:
            sweep = store.gc()
            if sweep.objects_removed or sweep.index_removed:
                telemetry.gc_sweep(
                    0, sweep.objects_removed, sweep.bytes_freed
                )
    ran: list[int] = []
    interrupted: str | None = None
    export_root = Path(export_dir) if export_dir is not None else None
    if export_root is not None:
        export_root.mkdir(parents=True, exist_ok=True)

    def fire(epoch: int, phase: str) -> None:
        if chaos is not None:
            chaos.fire(epoch, phase)

    with GracefulShutdown() as shutdown:
        for epoch in range(len(ledger.entries), watch.epochs):
            fire(epoch, "epoch-start")
            if shutdown.requested():
                interrupted = shutdown.signal_name
                break
            spec = watch.epoch_spec(epoch)
            baseline_entry = ledger.latest_ok()
            baseline = (
                baseline_entry["campaign"]
                if baseline_entry is not None
                else None
            )
            deadline_at = (
                time.monotonic() + watch.epoch_deadline
                if watch.epoch_deadline is not None
                else None
            )
            deadline_blown = False
            checkpoints = 0

            def should_halt() -> bool:
                nonlocal checkpoints, deadline_blown
                checkpoints += 1
                if chaos is not None:
                    chaos.fire(epoch, "mid-measure", checkpoints)
                if shutdown.requested():
                    return True
                if (
                    deadline_at is not None
                    and time.monotonic() > deadline_at
                ):
                    deadline_blown = True
                    return True
                return False

            try:
                result = run_campaign(
                    spec,
                    workers=workers,
                    store=store,
                    resume=True,
                    baseline=baseline,
                    policy=policy,
                    should_halt=should_halt,
                )
            except CampaignHalted as halted:
                if not deadline_blown:
                    # A signal stopped the campaign mid-epoch.  The
                    # checkpointed countries are durable; no ledger
                    # entry lands, and --resume-series re-enters this
                    # epoch reusing them.
                    interrupted = shutdown.signal_name
                    telemetry.signal_stop(interrupted or "unknown")
                    break
                telemetry.deadline_blown()
                status = "degraded:deadline"
                campaign = halted.campaign
                result = None
            else:
                status = (
                    "degraded:quarantine"
                    if result.quarantined
                    else "ok"
                )
                campaign = result.campaign
            assert campaign is not None
            if (
                interrupted is None
                and shutdown.requested()
                and result is not None
            ):
                # The signal landed after the epoch's last checkpoint:
                # the epoch is complete, so record it, then stop.
                telemetry.signal_stop(shutdown.signal_name or "unknown")

            if export_root is not None and result is not None:
                export_csv(
                    result.dataset,
                    export_root / f"epoch-{epoch:03d}.csv",
                )

            manifest = store.load_manifest(campaign)
            if manifest is None:  # pragma: no cover - checkpointing wrote it
                raise PipelineError(
                    f"epoch {epoch} campaign {campaign[:16]} left no "
                    f"manifest"
                )
            objects = _objects_of(manifest, store)
            retired, quota_met = plan_retirement(
                ledger.entries,
                objects,
                watch.store_quota_bytes,
                chaos.pressure_bytes(epoch) if chaos is not None else 0,
            )
            if not quota_met:
                telemetry.quota_unmet()
            epoch_to_campaign = {
                entry["epoch"]: entry["campaign"]
                for entry in ledger.entries
            }
            # Write-ahead ordering: the ledger entry (with its
            # retirement decision) lands *before* any manifest is
            # deleted, so a kill anywhere in the GC leaves the intent
            # durable and the execution replayable — never the
            # reverse, where deleted manifests would orphan a ledger
            # that still considers their epochs live.
            ledger.append(
                {
                    "epoch": epoch,
                    "campaign": campaign,
                    "snapshot": (
                        spec.config.snapshot
                        if epoch == 0
                        else f"{spec.config.snapshot}+e{epoch}"
                    ),
                    "status": status,
                    "baseline": baseline,
                    "objects": objects,
                    "retired": retired,
                    "quota_met": quota_met,
                }
            )
            for victim in retired:
                store.delete_manifest(epoch_to_campaign[victim])
            fire(epoch, "mid-gc")
            if retired:
                sweep = store.gc()
                telemetry.gc_sweep(
                    len(retired),
                    sweep.objects_removed,
                    sweep.bytes_freed,
                )
            telemetry.epoch(status)
            ran.append(epoch)
            fire(epoch, "epoch-end")
            if shutdown.requested():
                interrupted = shutdown.signal_name
                break

    payload = telemetry.to_dict()
    ledger.merge_watch_metrics(payload)
    quota_unmet = tuple(
        entry["epoch"]
        for entry in ledger.entries
        if not entry["quota_met"]
    )
    return WatchReport(
        series=ledger.series,
        epochs_recorded=len(ledger.entries),
        epochs_target=watch.epochs,
        ran=tuple(ran),
        statuses=tuple(
            entry["status"] for entry in ledger.entries
        ),
        interrupted=interrupted,
        retired=tuple(sorted(ledger.retired_epochs())),
        quota_unmet=quota_unmet,
        metrics=payload,
        store_bytes=store.objects_bytes(),
    )
