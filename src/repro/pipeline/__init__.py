"""Measurement pipeline: scanning the synthetic web like the paper did.

:mod:`~repro.pipeline.measure` resolves, geolocates, TLS-scans, and
enriches every toplist website into :class:`WebsiteMeasurement`
records; :mod:`~repro.pipeline.records` holds the resulting dataset;
:mod:`~repro.pipeline.vantage` replays the RIPE-Atlas vantage-point
validation; :mod:`~repro.pipeline.parallel` shards a campaign across
worker processes with a deterministic per-country merge.
"""

from .export import (
    CSV_FIELDS,
    LEGACY_CSV_FIELDS,
    export_csv,
    export_summary_json,
    load_csv,
    rows_from_csv_text,
    rows_to_csv_text,
)
from .measure import STANFORD_VANTAGE_CONTINENT, MeasurementPipeline
from .parallel import (
    CampaignHalted,
    CampaignResult,
    CampaignSpec,
    CountryResult,
    measure_country_unit,
    pop_world_build,
    run_campaign,
)
from .records import LAYER_FIELDS, MeasurementDataset, WebsiteMeasurement
from .supervisor import ShardSupervisor, SupervisorPolicy
from .vantage import VantageComparison, ripe_style_dataset, validate_vantage
from .watch import GracefulShutdown, WatchReport, WatchSpec, run_watch

__all__ = [
    "GracefulShutdown",
    "WatchSpec",
    "WatchReport",
    "run_watch",
    "MeasurementPipeline",
    "STANFORD_VANTAGE_CONTINENT",
    "CampaignSpec",
    "CampaignResult",
    "CampaignHalted",
    "CountryResult",
    "ShardSupervisor",
    "SupervisorPolicy",
    "measure_country_unit",
    "pop_world_build",
    "run_campaign",
    "MeasurementDataset",
    "WebsiteMeasurement",
    "LAYER_FIELDS",
    "VantageComparison",
    "ripe_style_dataset",
    "validate_vantage",
    "export_csv",
    "load_csv",
    "rows_to_csv_text",
    "rows_from_csv_text",
    "export_summary_json",
    "CSV_FIELDS",
    "LEGACY_CSV_FIELDS",
]
