"""The active-measurement pipeline (Section 3.4, in simulation).

For every website of every country toplist:

1. resolve the domain with the iterative resolver (ZDNS step);
2. label the serving IP with its AS organization (pfx2as + AS→Org),
   geolocation (NetAcuity step), and anycast flag (bgp.tools step);
3. find the authoritative nameservers, resolve them, and label the DNS
   infrastructure organization the same way;
4. complete a TLS handshake, parse the leaf, and map the issuer to its
   CA owner through CCADB (ZGrab2 + Ma et al. step);
5. extract the TLD from the public suffix split.

Failures are recorded per layer — a TLS flap no longer poisons the
hosting/DNS layers of the same row — and the pipeline is resilient the
way a production campaign must be: an optional
:class:`~repro.faults.FaultPlan` injects seeded faults into the DNS,
TLS, and enrichment surfaces; a :class:`~repro.faults.RetryPolicy`
retries transient failures with deterministic backoff on the logical
clock; and a per-nameserver :class:`~repro.faults.CircuitBreaker`
skips repeatedly failing authoritative infrastructure with a recorded
reason instead of re-probing it for every delegating site.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import PipelineError, ReproError
from ..faults.breaker import CircuitBreaker
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy, RetrySession
from ..faults.taxonomy import failure_class, format_failure
from ..net.dns import Resolver, ZoneCache
from ..obs.instrument import NULL_OBS, Instrumentation
from ..worldgen.world import World
from .records import MeasurementDataset, WebsiteMeasurement

__all__ = ["MeasurementPipeline", "STANFORD_VANTAGE_CONTINENT"]

#: The paper measures from Stanford University — a North American
#: vantage point.
STANFORD_VANTAGE_CONTINENT = "NA"

#: The four (label, label-country, continent, anycast) Nones returned
#: when no authoritative nameserver could be labeled.
_NO_DNS_INFRA: tuple[str | None, str | None, str | None, bool] = (
    None,
    None,
    None,
    False,
)


class MeasurementPipeline:
    """Scans a :class:`~repro.worldgen.world.World` from one vantage."""

    def __init__(
        self,
        world: World,
        vantage_continent: str = STANFORD_VANTAGE_CONTINENT,
        *,
        vantage_country: str | None = None,
        measure_tls: bool = True,
        detect_language: bool = False,
        inter_site_seconds: float = 0.0,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        obs: Instrumentation | None = None,
        zone_cache: ZoneCache | None = None,
    ) -> None:
        self.world = world
        self.vantage_continent = vantage_continent
        self.vantage_country = vantage_country
        self.measure_tls = measure_tls
        self.detect_language = detect_language
        self._inter_site_seconds = inter_site_seconds
        self.resolver = Resolver(
            world.namespace,
            vantage_continent=vantage_continent,
            vantage_country=vantage_country,
            zone_cache=zone_cache,
        )
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.wrap_resolver(self.resolver)
        self.retry_policy = retry_policy
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(clock=lambda: self.resolver.clock)
        )
        #: Telemetry sink (spans + metrics + logs).  The default is a
        #: shared no-op object, so the uninstrumented pipeline produces
        #: byte-identical output at full speed.
        self.obs = obs if obs is not None else NULL_OBS
        #: The retry sessions' observer: the real instrumentation or
        #: None (RetrySession skips its hooks entirely on None).
        self._retry_observer = obs
        if obs is not None:
            obs.bind_clock(self.resolver.clock_fn())
            self.resolver.observer = obs
            if self.breaker.on_transition is None:
                self.breaker.on_transition = obs.breaker_transition
        #: ns_host -> (labels-or-None, negative-entry expiry, geo-stale
        #: flag).  Dead nameservers are cached too (negative entries
        #: carry their expiry on the logical clock) so one dead host is
        #: not re-resolved for every site that delegates to it.  The
        #: geo-stale flag rides along so cached stale-geo labels still
        #: mark their rows degraded.
        self._ns_org_cache: dict[
            str,
            tuple[
                tuple[str | None, str | None, str | None, bool] | None,
                float,
                bool,
            ],
        ] = {}

    # ------------------------------------------------------------------

    def _wait(self, seconds: float) -> None:
        """Spend backoff time on the deterministic logical clock."""
        self.resolver.advance_clock(seconds)

    def _failed_row(
        self,
        domain: str,
        country: str,
        rank: int,
        step: str,
        exc: ReproError,
        session: RetrySession,
    ) -> WebsiteMeasurement:
        return WebsiteMeasurement(
            domain=domain,
            country=country,
            rank=rank,
            error=format_failure(step, exc),
            attempts=session.attempts,
        )

    def measure_site(
        self, domain: str, country: str, rank: int
    ) -> WebsiteMeasurement:
        """Measure and enrich a single website.

        The root-page fetch follows HTTP redirects first (about a third
        of the web answers its apex with a 301 to ``www.``), then
        resolves and scans whatever host ultimately serves the page.
        When instrumented, the whole site is one ``site`` span with
        nested stage spans (http → resolve → label → ns-walk → tls →
        enrich) and the finished row feeds the metrics registry.  Only
        the site span carries attributes — its children inherit the
        domain/country through the parent link, and the empty-attrs
        form keeps six dict builds per site off the hot path.
        """
        if self._inter_site_seconds:
            self.resolver.advance_clock(self._inter_site_seconds)
        obs = self.obs
        with obs.span("site", domain=domain, country=country):
            record = self._measure_site(domain, country, rank)
        obs.row_measured(record)
        return record

    def _measure_site(
        self, domain: str, country: str, rank: int
    ) -> WebsiteMeasurement:
        obs = self.obs
        session = RetrySession(
            self.retry_policy, observer=self._retry_observer
        )
        plan = self.fault_plan
        try:
            with obs.span("http"):
                serving_host = self.world.http.final_host(domain)
        except ReproError as exc:
            return self._failed_row(
                domain, country, rank, "http", exc, session
            )
        try:
            with obs.span("resolve"):
                resolution = session.run(
                    f"resolve:{serving_host}",
                    lambda: self.resolver.resolve(serving_host),
                    self._wait,
                )
        except ReproError as exc:
            return self._failed_row(
                domain, country, rank, "resolve", exc, session
            )
        if not resolution.addresses:
            return WebsiteMeasurement(
                domain=domain,
                country=country,
                rank=rank,
                error="resolve: empty-answer: answer had no addresses",
                attempts=session.attempts,
            )
        ip = resolution.addresses[0]

        world = self.world
        with obs.span("label"):
            hosting_org = world.asdb.org_of_ip(ip)
            hosting_org_country = world.asdb.country_of_ip(ip)
            geo_stale = plan is not None and plan.geo_stale(ip)
            if geo_stale:
                # The stale enrichment snapshot has no entry for this
                # address: the row keeps its provider labels but loses
                # geolocation.
                ip_country = ip_continent = None
            else:
                ip_country = world.geo.country_of(ip)
                ip_continent = world.geo.continent_of(ip)
            ip_anycast = world.anycast.is_anycast(ip)

        with obs.span("ns-walk"):
            dns_infra, dns_error, ns_geo_stale = self._dns_infrastructure(
                resolution.authoritative_ns, session
            )
        dns_org, dns_org_country, ns_continent, ns_anycast = dns_infra

        ca_owner = ca_country = None
        tls_error: str | None = None
        if self.measure_tls:
            tls_hook = plan.tls_hook if plan is not None else None
            try:
                with obs.span("tls"):
                    certificate = session.run(
                        f"tls:{serving_host}",
                        lambda: world.tls_handshake(
                            ip, serving_host, fault_hook=tls_hook
                        ),
                        self._wait,
                    )
                if not certificate.covers(serving_host):
                    tls_error = (
                        "tls: certificate: certificate does not cover "
                        "hostname"
                    )
                    obs.tls_outcome("certificate")
                else:
                    owner = world.ccadb.owner_of(certificate.issuer_cn)
                    ca_owner, ca_country = owner.name, owner.country
                    obs.tls_outcome("ok")
            except ReproError as exc:
                tls_error = format_failure("tls", exc)
                obs.tls_outcome(failure_class(exc))

        with obs.span("enrich"):
            try:
                tld = world.psl.tld_of(domain)
            except ReproError:
                tld = None

            language: str | None = None
            if self.detect_language:
                # The LangDetect step (Section 5.3.3): fetch the page
                # and classify its text; expensive, so opt-in per
                # pipeline.
                from ..text import default_detector

                try:
                    language = default_detector().detect(
                        world.page_content(domain)
                    )
                except ReproError:
                    language = None

        return WebsiteMeasurement(
            domain=domain,
            country=country,
            rank=rank,
            ip=ip,
            hosting_org=hosting_org,
            hosting_org_country=hosting_org_country,
            ip_country=ip_country,
            ip_continent=ip_continent,
            ip_anycast=ip_anycast,
            dns_org=dns_org,
            dns_org_country=dns_org_country,
            ns_continent=ns_continent,
            ns_anycast=ns_anycast,
            ca_owner=ca_owner,
            ca_country=ca_country,
            tld=tld,
            language=language,
            dns_error=dns_error,
            tls_error=tls_error,
            attempts=session.attempts,
            degraded=(
                dns_error is not None
                or tls_error is not None
                or geo_stale
                or ns_geo_stale
            ),
        )

    def _dns_infrastructure(
        self,
        authoritative_ns: tuple[str, ...],
        session: RetrySession,
    ) -> tuple[
        tuple[str | None, str | None, str | None, bool],
        str | None,
        bool,
    ]:
        """Label the DNS provider from the first resolvable NS host.

        Returns ``(labels, dns_error, ns_geo_stale)`` — the last flag
        is True when the labeling NS address hit the stale-geo
        enrichment snapshot, so the caller can mark the row degraded.

        Successful labels are cached per nameserver; failures are
        *negative-cached* (with a TTL on the logical clock) and counted
        against the per-nameserver circuit breaker, so dead
        authoritative infrastructure is skipped with a recorded reason
        instead of re-probed for every delegating site.
        """
        obs = self.obs
        failures: list[str] = []
        for ns_host in authoritative_ns:
            cached = self._ns_org_cache.get(ns_host)
            if cached is not None:
                result, expires_at, cached_stale = cached
                if result is not None:
                    obs.ns_cache_event("hit")
                    return result, None, cached_stale
                if expires_at > self.resolver.clock:
                    obs.ns_cache_event("negative_hit")
                    obs.ns_failure(ns_host, "nxdomain")
                    failures.append(
                        f"{ns_host}: nxdomain: recently failed "
                        f"(negative cache)"
                    )
                    continue
                del self._ns_org_cache[ns_host]
            if not self.breaker.allow(ns_host):
                obs.breaker_skip(ns_host)
                obs.ns_failure(ns_host, "circuit-open")
                failures.append(
                    f"{ns_host}: circuit-open: "
                    f"{self.breaker.reason(ns_host)}"
                )
                continue
            obs.ns_cache_event("miss")
            try:
                ns_resolution = session.run(
                    f"ns:{ns_host}",
                    lambda: self.resolver.resolve(ns_host),
                    self._wait,
                )
            except ReproError as exc:
                self.breaker.record_failure(ns_host)
                self._ns_org_cache[ns_host] = (
                    None,
                    self.resolver.clock + Resolver.NEGATIVE_TTL,
                    False,
                )
                obs.ns_failure(ns_host, failure_class(exc))
                failures.append(
                    f"{ns_host}: {failure_class(exc)}: {exc}"
                )
                continue
            if not ns_resolution.addresses:
                obs.ns_failure(ns_host, "empty-answer")
                failures.append(f"{ns_host}: empty-answer: no addresses")
                continue
            self.breaker.record_success(ns_host)
            ns_ip = ns_resolution.addresses[0]
            ns_geo_stale = (
                self.fault_plan is not None
                and self.fault_plan.geo_stale(ns_ip)
            )
            if ns_geo_stale:
                # The stale enrichment snapshot has no entry for the
                # NS address: the row keeps its provider labels but
                # loses NS geolocation — and is degraded for it.
                ns_continent = None
            else:
                ns_continent = self.world.geo.continent_of(ns_ip)
            result = (
                self.world.asdb.org_of_ip(ns_ip),
                self.world.asdb.country_of_ip(ns_ip),
                ns_continent,
                self.world.anycast.is_anycast(ns_ip),
            )
            self._ns_org_cache[ns_host] = (result, 0.0, ns_geo_stale)
            return result, None, ns_geo_stale
        if failures:
            return _NO_DNS_INFRA, "dns: " + "; ".join(failures), False
        return _NO_DNS_INFRA, None, False

    # ------------------------------------------------------------------

    def measure_country(self, country: str) -> list[WebsiteMeasurement]:
        """Measure every site of one country's toplist, in rank order."""
        toplist = self.world.toplists.get(country)
        if toplist is None:
            raise PipelineError(
                f"world has no toplist for {country!r}; is it in the "
                f"config's country set?"
            )
        return [
            self.measure_site(domain, country, rank)
            for rank, domain in enumerate(toplist.domains, start=1)
        ]

    def run(
        self, countries: Sequence[str] | None = None
    ) -> MeasurementDataset:
        """Measure all (or selected) countries into a dataset."""
        dataset = MeasurementDataset(
            vantage_continent=self.vantage_continent
        )
        targets = (
            list(countries)
            if countries is not None
            else sorted(self.world.toplists)
        )
        for country in targets:
            dataset.extend(self.measure_country(country))
        return dataset
