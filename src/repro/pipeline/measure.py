"""The active-measurement pipeline (Section 3.4, in simulation).

For every website of every country toplist:

1. resolve the domain with the iterative resolver (ZDNS step);
2. label the serving IP with its AS organization (pfx2as + AS→Org),
   geolocation (NetAcuity step), and anycast flag (bgp.tools step);
3. find the authoritative nameservers, resolve them, and label the DNS
   infrastructure organization the same way;
4. complete a TLS handshake, parse the leaf, and map the issuer to its
   CA owner through CCADB (ZGrab2 + Ma et al. step);
5. extract the TLD from the public suffix split.

Resolution failures, TLS failures, and unannounced address space are
recorded per-site; the dataset keeps failed rows for failure-rate
accounting while layer distributions skip them, exactly as dropping
unresolvable domains from the paper's analysis.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import PipelineError, ReproError
from ..net.dns import Resolver
from ..worldgen.world import World
from .records import MeasurementDataset, WebsiteMeasurement

__all__ = ["MeasurementPipeline", "STANFORD_VANTAGE_CONTINENT"]

#: The paper measures from Stanford University — a North American
#: vantage point.
STANFORD_VANTAGE_CONTINENT = "NA"


class MeasurementPipeline:
    """Scans a :class:`~repro.worldgen.world.World` from one vantage."""

    def __init__(
        self,
        world: World,
        vantage_continent: str = STANFORD_VANTAGE_CONTINENT,
        *,
        vantage_country: str | None = None,
        measure_tls: bool = True,
        detect_language: bool = False,
        inter_site_seconds: float = 0.0,
    ) -> None:
        self.world = world
        self.vantage_continent = vantage_continent
        self.vantage_country = vantage_country
        self.measure_tls = measure_tls
        self.detect_language = detect_language
        self._inter_site_seconds = inter_site_seconds
        self.resolver = Resolver(
            world.namespace,
            vantage_continent=vantage_continent,
            vantage_country=vantage_country,
        )
        self._ns_org_cache: dict[str, tuple[str | None, str | None, str | None, bool]] = {}

    # ------------------------------------------------------------------

    def measure_site(
        self, domain: str, country: str, rank: int
    ) -> WebsiteMeasurement:
        """Measure and enrich a single website.

        The root-page fetch follows HTTP redirects first (about a third
        of the web answers its apex with a 301 to ``www.``), then
        resolves and scans whatever host ultimately serves the page.
        """
        if self._inter_site_seconds:
            self.resolver.advance_clock(self._inter_site_seconds)
        try:
            serving_host = self.world.http.final_host(domain)
        except ReproError as exc:
            return WebsiteMeasurement(
                domain=domain,
                country=country,
                rank=rank,
                error=f"http: {exc}",
            )
        try:
            resolution = self.resolver.resolve(serving_host)
        except ReproError as exc:
            return WebsiteMeasurement(
                domain=domain,
                country=country,
                rank=rank,
                error=f"resolve: {exc}",
            )
        if not resolution.addresses:
            return WebsiteMeasurement(
                domain=domain, country=country, rank=rank,
                error="resolve: empty answer",
            )
        ip = resolution.addresses[0]

        world = self.world
        hosting_org = world.asdb.org_of_ip(ip)
        hosting_org_country = world.asdb.country_of_ip(ip)
        ip_country = world.geo.country_of(ip)
        ip_continent = world.geo.continent_of(ip)
        ip_anycast = world.anycast.is_anycast(ip)

        dns_org, dns_org_country, ns_continent, ns_anycast = (
            self._dns_infrastructure(resolution.authoritative_ns)
        )

        ca_owner = ca_country = None
        tls_error: str | None = None
        if self.measure_tls:
            try:
                certificate = world.tls_handshake(ip, serving_host)
                if not certificate.covers(serving_host):
                    tls_error = "tls: certificate does not cover hostname"
                else:
                    owner = world.ccadb.owner_of(certificate.issuer_cn)
                    ca_owner, ca_country = owner.name, owner.country
            except ReproError as exc:
                tls_error = f"tls: {exc}"

        try:
            tld = world.psl.tld_of(domain)
        except ReproError:
            tld = None

        language: str | None = None
        if self.detect_language:
            # The LangDetect step (Section 5.3.3): fetch the page and
            # classify its text; expensive, so opt-in per pipeline.
            from ..text import default_detector

            try:
                language = default_detector().detect(
                    world.page_content(domain)
                )
            except ReproError:
                language = None

        return WebsiteMeasurement(
            domain=domain,
            country=country,
            rank=rank,
            ip=ip,
            hosting_org=hosting_org,
            hosting_org_country=hosting_org_country,
            ip_country=ip_country,
            ip_continent=ip_continent,
            ip_anycast=ip_anycast,
            dns_org=dns_org,
            dns_org_country=dns_org_country,
            ns_continent=ns_continent,
            ns_anycast=ns_anycast,
            ca_owner=ca_owner,
            ca_country=ca_country,
            tld=tld,
            language=language,
            error=tls_error,
        )

    def _dns_infrastructure(
        self, authoritative_ns: tuple[str, ...]
    ) -> tuple[str | None, str | None, str | None, bool]:
        """Label the DNS provider from the first resolvable NS host."""
        for ns_host in authoritative_ns:
            cached = self._ns_org_cache.get(ns_host)
            if cached is not None:
                return cached
            try:
                ns_resolution = self.resolver.resolve(ns_host)
            except ReproError:
                continue
            if not ns_resolution.addresses:
                continue
            ns_ip = ns_resolution.addresses[0]
            result = (
                self.world.asdb.org_of_ip(ns_ip),
                self.world.asdb.country_of_ip(ns_ip),
                self.world.geo.continent_of(ns_ip),
                self.world.anycast.is_anycast(ns_ip),
            )
            self._ns_org_cache[ns_host] = result
            return result
        return None, None, None, False

    # ------------------------------------------------------------------

    def measure_country(self, country: str) -> list[WebsiteMeasurement]:
        """Measure every site of one country's toplist, in rank order."""
        toplist = self.world.toplists.get(country)
        if toplist is None:
            raise PipelineError(
                f"world has no toplist for {country!r}; is it in the "
                f"config's country set?"
            )
        return [
            self.measure_site(domain, country, rank)
            for rank, domain in enumerate(toplist.domains, start=1)
        ]

    def run(
        self, countries: Sequence[str] | None = None
    ) -> MeasurementDataset:
        """Measure all (or selected) countries into a dataset."""
        dataset = MeasurementDataset(
            vantage_continent=self.vantage_continent
        )
        targets = (
            list(countries)
            if countries is not None
            else sorted(self.world.toplists)
        )
        for country in targets:
            dataset.extend(self.measure_country(country))
        return dataset
