"""Measurement records: what one scan of one website yields.

A :class:`WebsiteMeasurement` is the enriched per-site row the paper's
pipeline produces — DNS resolution, serving IP with AS organization /
geolocation / anycast annotations, authoritative DNS organization, CA
ownership of the served leaf certificate, and the TLD.  Failures are
recorded rather than raised so that datasets stay rectangular.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..core.distributions import ProviderDistribution
from ..errors import UnknownCountryError, UnknownLayerError

__all__ = ["WebsiteMeasurement", "MeasurementDataset", "LAYER_FIELDS"]


@dataclass(frozen=True, slots=True)
class WebsiteMeasurement:
    """One fully enriched website measurement."""

    domain: str
    country: str
    rank: int
    ip: int | None = None
    hosting_org: str | None = None
    hosting_org_country: str | None = None
    ip_country: str | None = None
    ip_continent: str | None = None
    ip_anycast: bool = False
    dns_org: str | None = None
    dns_org_country: str | None = None
    ns_continent: str | None = None
    ns_anycast: bool = False
    ca_owner: str | None = None
    ca_country: str | None = None
    tld: str | None = None
    language: str | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the measurement completed without error."""
        return self.error is None


#: layer name -> (label field, label-country field).
LAYER_FIELDS: dict[str, tuple[str, str | None]] = {
    "hosting": ("hosting_org", "hosting_org_country"),
    "dns": ("dns_org", "dns_org_country"),
    "ca": ("ca_owner", "ca_country"),
    "tld": ("tld", None),
}


class MeasurementDataset:
    """All measurements of one study run, indexed by country.

    Provides the raw-material queries every analysis consumes: the
    per-layer :class:`ProviderDistribution` of a country, provider home
    countries, and per-provider per-country usage (the regionalization
    inputs).
    """

    def __init__(self, vantage_continent: str | None = None) -> None:
        self._by_country: dict[str, list[WebsiteMeasurement]] = {}
        self.vantage_continent = vantage_continent

    def add(self, measurement: WebsiteMeasurement) -> None:
        """Append one measurement."""
        self._by_country.setdefault(measurement.country, []).append(
            measurement
        )

    def extend(self, measurements: Iterable[WebsiteMeasurement]) -> None:
        """Append many measurements."""
        for m in measurements:
            self.add(m)

    @property
    def countries(self) -> list[str]:
        """Country codes covered, sorted."""
        return sorted(self._by_country)

    def records(self, country: str) -> list[WebsiteMeasurement]:
        """All measurements for one country."""
        try:
            return list(self._by_country[country])
        except KeyError:
            raise UnknownCountryError(
                f"no measurements for country {country!r}"
            ) from None

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_country.values())

    def __iter__(self) -> Iterator[WebsiteMeasurement]:
        for country in self.countries:
            yield from self._by_country[country]

    def failure_rate(self, country: str) -> float:
        """Fraction of a country's measurements that failed."""
        records = self.records(country)
        if not records:
            return 0.0
        return sum(1 for r in records if not r.ok) / len(records)

    # ------------------------------------------------------------------
    # Layer views
    # ------------------------------------------------------------------

    @staticmethod
    def _layer_fields(layer: str) -> tuple[str, str | None]:
        try:
            return LAYER_FIELDS[layer]
        except KeyError:
            raise UnknownLayerError(
                f"unknown layer {layer!r}; expected one of "
                f"{sorted(LAYER_FIELDS)}"
            ) from None

    def layer_labels(self, country: str, layer: str) -> list[str | None]:
        """The per-site provider/CA/TLD labels of a country's toplist."""
        field, _ = self._layer_fields(layer)
        return [getattr(r, field) for r in self._by_country.get(country, [])]

    def distribution(self, country: str, layer: str) -> ProviderDistribution:
        """Observed provider distribution for a (country, layer)."""
        field, _ = self._layer_fields(layer)
        records = self.records(country)
        return ProviderDistribution.from_assignments(
            getattr(r, field) for r in records
        )

    def provider_countries(self, layer: str) -> dict[str, str]:
        """Home country of every provider seen at a layer."""
        field, country_field = self._layer_fields(layer)
        if country_field is None:
            return {}
        homes: dict[str, str] = {}
        for records in self._by_country.values():
            for r in records:
                label = getattr(r, field)
                home = getattr(r, country_field)
                if label is not None and home is not None:
                    homes[label] = home
        return homes

    def usage_matrix(self, layer: str) -> dict[str, dict[str, float]]:
        """provider -> country -> percent of the country's sites.

        The raw input to usage curves, endemicity, and classification
        (Section 3.3).  Countries where a provider is unused are
        included with 0 so all curves share the same domain.
        """
        field, _ = self._layer_fields(layer)
        counts: dict[str, Counter[str]] = {}
        totals: dict[str, int] = {}
        for country, records in self._by_country.items():
            ok = [r for r in records if getattr(r, field) is not None]
            totals[country] = len(ok)
            for r in ok:
                counts.setdefault(getattr(r, field), Counter())[
                    country
                ] += 1
        matrix: dict[str, dict[str, float]] = {}
        all_countries = self.countries
        for provider, per_country in counts.items():
            matrix[provider] = {
                cc: (
                    100.0 * per_country.get(cc, 0) / totals[cc]
                    if totals[cc]
                    else 0.0
                )
                for cc in all_countries
            }
        return matrix

    def merged_distribution(self, layer: str) -> ProviderDistribution:
        """Aggregate distribution across every measured country."""
        field, _ = self._layer_fields(layer)
        return ProviderDistribution.from_assignments(
            getattr(r, field)
            for records in self._by_country.values()
            for r in records
        )
