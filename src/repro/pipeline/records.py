"""Measurement records: what one scan of one website yields.

A :class:`WebsiteMeasurement` is the enriched per-site row the paper's
pipeline produces — DNS resolution, serving IP with AS organization /
geolocation / anycast annotations, authoritative DNS organization, CA
ownership of the served leaf certificate, and the TLD.  Failures are
recorded rather than raised so that datasets stay rectangular, and
they are recorded *per layer*: a TLS flap lands in ``tls_error`` and a
dead nameserver in ``dns_error``, leaving the other layers of the row
usable (graceful degradation), while only whole-row failures (HTTP
fetch, serving-host resolution) use ``error``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..core.distributions import ProviderDistribution
from ..errors import UnknownCountryError, UnknownLayerError

__all__ = ["WebsiteMeasurement", "MeasurementDataset", "LAYER_FIELDS"]


@dataclass(frozen=True, slots=True)
class WebsiteMeasurement:
    """One fully enriched website measurement."""

    domain: str
    country: str
    rank: int
    ip: int | None = None
    hosting_org: str | None = None
    hosting_org_country: str | None = None
    ip_country: str | None = None
    ip_continent: str | None = None
    ip_anycast: bool = False
    dns_org: str | None = None
    dns_org_country: str | None = None
    ns_continent: str | None = None
    ns_anycast: bool = False
    ca_owner: str | None = None
    ca_country: str | None = None
    tld: str | None = None
    language: str | None = None
    #: Whole-row failure: the HTTP fetch or the serving-host resolution
    #: failed, so no layer of the row carries data.
    error: str | None = None
    #: DNS-infrastructure failure: the authoritative nameservers could
    #: not be labeled (the hosting/CA/TLD layers remain valid).
    dns_error: str | None = None
    #: TLS failure: no usable leaf certificate (the hosting/DNS/TLD
    #: layers remain valid).
    tls_error: str | None = None
    #: Total network operations attempted for this row, including
    #: retries (resilience provenance; 0 for hand-built records).
    attempts: int = 0
    #: True when the row is partial: some layer failed or fell back
    #: (stale geodata, dead nameservers, TLS flap) while the rest of
    #: the row stayed measurable.
    degraded: bool = False

    @property
    def ok(self) -> bool:
        """True when the site itself was fully measured.

        DNS-infrastructure degradation does not fail a row (matching
        the historical accounting, where a dead nameserver silently
        yielded an unlabeled DNS layer); row-level and TLS failures do.
        """
        return self.error is None and self.tls_error is None

    @property
    def complete(self) -> bool:
        """True when every layer measured without error or fallback."""
        return self.ok and self.dns_error is None and not self.degraded

    def failures(self) -> list[tuple[str, str]]:
        """All recorded ``(layer, message)`` failures of this row."""
        found: list[tuple[str, str]] = []
        if self.error is not None:
            # Legacy rows stored TLS failures in the generic field.
            if self.error.startswith("http"):
                layer = "http"
            elif self.error.startswith("tls"):
                layer = "tls"
            else:
                layer = "dns"
            found.append((layer, self.error))
        if self.dns_error is not None:
            found.append(("dns", self.dns_error))
        if self.tls_error is not None:
            found.append(("tls", self.tls_error))
        return found


#: layer name -> (label field, label-country field).
LAYER_FIELDS: dict[str, tuple[str, str | None]] = {
    "hosting": ("hosting_org", "hosting_org_country"),
    "dns": ("dns_org", "dns_org_country"),
    "ca": ("ca_owner", "ca_country"),
    "tld": ("tld", None),
}


class MeasurementDataset:
    """All measurements of one study run, indexed by country.

    Provides the raw-material queries every analysis consumes: the
    per-layer :class:`ProviderDistribution` of a country, provider home
    countries, and per-provider per-country usage (the regionalization
    inputs).
    """

    def __init__(self, vantage_continent: str | None = None) -> None:
        self._by_country: dict[str, list[WebsiteMeasurement]] = {}
        self.vantage_continent = vantage_continent

    def add(self, measurement: WebsiteMeasurement) -> None:
        """Append one measurement."""
        self._by_country.setdefault(measurement.country, []).append(
            measurement
        )

    def extend(self, measurements: Iterable[WebsiteMeasurement]) -> None:
        """Append many measurements."""
        for m in measurements:
            self.add(m)

    @property
    def countries(self) -> list[str]:
        """Country codes covered, sorted."""
        return sorted(self._by_country)

    def records(self, country: str) -> list[WebsiteMeasurement]:
        """All measurements for one country."""
        try:
            return list(self._by_country[country])
        except KeyError:
            raise UnknownCountryError(
                f"no measurements for country {country!r}"
            ) from None

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_country.values())

    def __iter__(self) -> Iterator[WebsiteMeasurement]:
        for country in self.countries:
            yield from self._by_country[country]

    def failure_rate(self, country: str) -> float:
        """Fraction of a country's measurements that failed."""
        records = self.records(country)
        if not records:
            return 0.0
        return sum(1 for r in records if not r.ok) / len(records)

    def degraded_rate(self, country: str) -> float:
        """Fraction of a country's rows that are partial (degraded)."""
        records = self.records(country)
        if not records:
            return 0.0
        return sum(1 for r in records if r.degraded) / len(records)

    def failure_taxonomy(self) -> dict[str, dict[str, dict[str, int]]]:
        """Failure counts as ``class -> layer -> country -> count``.

        Mirrors the paper's failure-rate accounting at finer grain:
        every recorded per-layer failure is classified (servfail,
        timeout, nxdomain, tls-flap, …) via the fault taxonomy.  Use
        :func:`repro.faults.render_failure_report` to pretty-print.
        """
        from ..faults.taxonomy import failure_class_of

        taxonomy: dict[str, dict[str, dict[str, int]]] = {}
        for country, records in self._by_country.items():
            for record in records:
                for layer, message in record.failures():
                    per_layer = taxonomy.setdefault(
                        failure_class_of(message), {}
                    )
                    per_country = per_layer.setdefault(layer, {})
                    per_country[country] = per_country.get(country, 0) + 1
        return taxonomy

    # ------------------------------------------------------------------
    # Layer views
    # ------------------------------------------------------------------

    @staticmethod
    def _layer_fields(layer: str) -> tuple[str, str | None]:
        try:
            return LAYER_FIELDS[layer]
        except KeyError:
            raise UnknownLayerError(
                f"unknown layer {layer!r}; expected one of "
                f"{sorted(LAYER_FIELDS)}"
            ) from None

    def layer_labels(self, country: str, layer: str) -> list[str | None]:
        """The per-site provider/CA/TLD labels of a country's toplist."""
        field, _ = self._layer_fields(layer)
        return [getattr(r, field) for r in self._by_country.get(country, [])]

    def distribution(self, country: str, layer: str) -> ProviderDistribution:
        """Observed provider distribution for a (country, layer)."""
        field, _ = self._layer_fields(layer)
        records = self.records(country)
        return ProviderDistribution.from_assignments(
            getattr(r, field) for r in records
        )

    def provider_countries(self, layer: str) -> dict[str, str]:
        """Home country of every provider seen at a layer."""
        field, country_field = self._layer_fields(layer)
        if country_field is None:
            return {}
        homes: dict[str, str] = {}
        for records in self._by_country.values():
            for r in records:
                label = getattr(r, field)
                home = getattr(r, country_field)
                if label is not None and home is not None:
                    homes[label] = home
        return homes

    def usage_matrix(self, layer: str) -> dict[str, dict[str, float]]:
        """provider -> country -> percent of the country's sites.

        The raw input to usage curves, endemicity, and classification
        (Section 3.3).  Countries where a provider is unused are
        included with 0 so all curves share the same domain.
        """
        field, _ = self._layer_fields(layer)
        counts: dict[str, Counter[str]] = {}
        totals: dict[str, int] = {}
        for country, records in self._by_country.items():
            ok = [r for r in records if getattr(r, field) is not None]
            totals[country] = len(ok)
            for r in ok:
                counts.setdefault(getattr(r, field), Counter())[
                    country
                ] += 1
        matrix: dict[str, dict[str, float]] = {}
        all_countries = self.countries
        for provider, per_country in counts.items():
            matrix[provider] = {
                cc: (
                    100.0 * per_country.get(cc, 0) / totals[cc]
                    if totals[cc]
                    else 0.0
                )
                for cc in all_countries
            }
        return matrix

    def merged_distribution(self, layer: str) -> ProviderDistribution:
        """Aggregate distribution across every measured country."""
        field, _ = self._layer_fields(layer)
        return ProviderDistribution.from_assignments(
            getattr(r, field)
            for records in self._by_country.values()
            for r in records
        )
