"""Text substrate: content generation and language identification.

Stands in for the LangDetect dependency of Section 5.3.3 — every site
serves a deterministic text snippet in its language, and
:class:`LanguageDetector` recovers the language from the text alone.
"""

from .langid import (
    SUPPORTED_LANGUAGES,
    LanguageDetector,
    LanguageModel,
    default_detector,
    generate_text,
)

__all__ = [
    "LanguageModel",
    "LanguageDetector",
    "default_detector",
    "generate_text",
    "SUPPORTED_LANGUAGES",
]
