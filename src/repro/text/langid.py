"""Language identification: the LangDetect step of Section 5.3.3.

The paper detects website language with LangDetect to analyze the
Afghanistan/Iran Persian-language dependence.  This module provides the
offline equivalent: per-language token inventories, a deterministic
content generator (used by the world to give each site a text snippet),
and a naive-Bayes-style detector over token likelihoods — the same
add-one-smoothed unigram scheme language detectors are built on.

Languages carry ISO 639-1 codes; the inventory covers every primary
language appearing in :data:`repro.worldgen.toplist.LANGUAGE_OF_COUNTRY`.
"""

from __future__ import annotations

import math
import zlib
from collections.abc import Iterable

import numpy as np

from ..errors import ReproError

__all__ = [
    "LanguageModel",
    "LanguageDetector",
    "generate_text",
    "default_detector",
    "SUPPORTED_LANGUAGES",
]


class UnknownLanguageError(ReproError, KeyError):
    """Raised when asked to generate text for an unknown language."""


# Characteristic high-frequency tokens per language.  Real detectors
# use character n-grams; a curated token inventory plays the same role
# at this scale and keeps generation/detection exactly inverse.
_WORDS: dict[str, tuple[str, ...]] = {
    "en": ("the", "and", "for", "with", "news", "home", "about", "from",
           "this", "more", "service", "contact", "world", "daily"),
    "es": ("el", "la", "los", "para", "con", "noticias", "inicio",
           "sobre", "desde", "más", "servicio", "contacto", "mundo"),
    "pt": ("o", "a", "os", "para", "com", "notícias", "início", "sobre",
           "desde", "mais", "serviço", "contato", "mundo", "página"),
    "fr": ("le", "la", "les", "pour", "avec", "nouvelles", "accueil",
           "sur", "depuis", "plus", "service", "contact", "monde"),
    "de": ("der", "die", "das", "für", "mit", "nachrichten", "startseite",
           "über", "von", "mehr", "dienst", "kontakt", "welt"),
    "ru": ("и", "в", "на", "для", "с", "новости", "главная", "о",
           "из", "ещё", "сервис", "контакты", "мир"),
    "uk": ("і", "в", "на", "для", "з", "новини", "головна", "про",
           "із", "ще", "сервіс", "контакти", "світ"),
    "fa": ("و", "در", "به", "برای", "با", "اخبار", "خانه", "درباره",
           "از", "بیشتر", "خدمات", "تماس", "جهان"),
    "ps": ("او", "په", "ته", "لپاره", "سره", "خبرونه", "کور", "اړه",
           "له", "نور", "خدمتونه", "اړیکه", "نړۍ"),
    "ar": ("و", "في", "على", "من", "مع", "أخبار", "الرئيسية", "حول",
           "إلى", "المزيد", "خدمة", "اتصال", "العالم"),
    "zh": ("的", "在", "和", "为", "与", "新闻", "首页", "关于",
           "从", "更多", "服务", "联系", "世界"),
    "ja": ("の", "に", "と", "ため", "より", "ニュース", "ホーム",
           "について", "から", "もっと", "サービス", "連絡", "世界"),
    "ko": ("의", "에", "와", "위해", "보다", "뉴스", "홈", "소개",
           "에서", "더", "서비스", "연락", "세계"),
    "th": ("และ", "ใน", "ที่", "สำหรับ", "กับ", "ข่าว", "หน้าแรก",
           "เกี่ยวกับ", "จาก", "เพิ่มเติม", "บริการ", "ติดต่อ", "โลก"),
    "vi": ("và", "trong", "cho", "với", "từ", "tin", "trang", "về",
           "hơn", "dịch", "vụ", "liên", "hệ"),
    "id": ("dan", "di", "untuk", "dengan", "dari", "berita", "beranda",
           "tentang", "lebih", "layanan", "kontak", "dunia", "halaman"),
    "ms": ("dan", "di", "untuk", "dengan", "daripada", "berita", "laman",
           "tentang", "lagi", "perkhidmatan", "hubungi", "dunia", "utama"),
    "hi": ("और", "में", "के", "लिए", "साथ", "समाचार", "होम", "बारे",
           "से", "अधिक", "सेवा", "संपर्क", "दुनिया"),
    "ur": ("اور", "میں", "کے", "لیے", "ساتھ", "خبریں", "ہوم", "بارے",
           "سے", "مزید", "سروس", "رابطہ", "دنیا"),
    "bn": ("এবং", "মধ্যে", "জন্য", "সাথে", "থেকে", "খবর", "হোম",
           "সম্পর্কে", "আরও", "সেবা", "যোগাযোগ", "বিশ্ব", "পাতা"),
    "tr": ("ve", "için", "ile", "bu", "daha", "haberler", "anasayfa",
           "hakkında", "den", "fazla", "hizmet", "iletişim", "dünya"),
    "el": ("και", "στο", "για", "με", "από", "ειδήσεις", "αρχική",
           "σχετικά", "περισσότερα", "υπηρεσία", "επικοινωνία", "κόσμος",
           "σελίδα"),
    "he": ("ו", "ב", "ל", "עבור", "עם", "חדשות", "בית", "אודות",
           "מ", "עוד", "שירות", "קשר", "עולם"),
    "it": ("il", "la", "per", "con", "da", "notizie", "home", "chi",
           "più", "servizio", "contatto", "mondo", "pagina"),
    "pl": ("i", "w", "dla", "z", "od", "wiadomości", "strona", "o",
           "więcej", "usługa", "kontakt", "świat", "główna"),
    "cs": ("a", "v", "pro", "s", "od", "zprávy", "domů", "o",
           "více", "služba", "kontakt", "svět", "stránka"),
    "sk": ("a", "v", "pre", "s", "od", "správy", "domov", "o",
           "viac", "služba", "kontakt", "svet", "stránka"),
    "hu": ("és", "a", "az", "számára", "val", "hírek", "kezdőlap",
           "rólunk", "tól", "több", "szolgáltatás", "kapcsolat", "világ"),
    "ro": ("și", "în", "pentru", "cu", "din", "știri", "acasă",
           "despre", "mai", "serviciu", "contact", "lume", "pagina"),
    "bg": ("и", "в", "за", "с", "от", "новини", "начало", "относно",
           "още", "услуга", "контакт", "свят", "страница"),
    "sr": ("и", "у", "за", "са", "од", "вести", "почетна", "о",
           "више", "услуга", "контакт", "свет", "страна"),
    "hr": ("i", "u", "za", "s", "od", "vijesti", "početna", "o",
           "više", "usluga", "kontakt", "svijet", "stranica"),
    "bs": ("i", "u", "za", "sa", "od", "vijesti", "početna", "o",
           "više", "usluga", "kontakt", "svijet", "strana"),
    "sl": ("in", "v", "za", "z", "od", "novice", "domov", "o",
           "več", "storitev", "kontakt", "svet", "stran"),
    "mk": ("и", "во", "за", "со", "од", "вести", "почетна", "нас",
           "повеќе", "услуга", "контакт", "свет", "страница"),
    "sq": ("dhe", "në", "për", "me", "nga", "lajme", "kryefaqja",
           "rreth", "më", "shërbim", "kontakt", "bota", "faqja"),
    "nl": ("de", "het", "voor", "met", "van", "nieuws", "thuis",
           "over", "meer", "dienst", "contact", "wereld", "pagina"),
    "sv": ("och", "i", "för", "med", "från", "nyheter", "hem", "om",
           "mer", "tjänst", "kontakt", "värld", "sida"),
    "no": ("og", "i", "for", "med", "fra", "nyheter", "hjem", "om",
           "mer", "tjeneste", "kontakt", "verden", "side"),
    "da": ("og", "i", "til", "med", "fra", "nyheder", "hjem", "om",
           "mere", "tjeneste", "kontakt", "verden", "side"),
    "fi": ("ja", "on", "varten", "kanssa", "alkaen", "uutiset", "koti",
           "tietoa", "lisää", "palvelu", "yhteys", "maailma", "sivu"),
    "is": ("og", "í", "fyrir", "með", "frá", "fréttir", "heim", "um",
           "meira", "þjónusta", "samband", "heimur", "síða"),
    "et": ("ja", "on", "jaoks", "koos", "alates", "uudised", "kodu",
           "meist", "rohkem", "teenus", "kontakt", "maailm", "leht"),
    "lv": ("un", "ir", "priekš", "ar", "no", "ziņas", "mājas", "par",
           "vairāk", "pakalpojums", "kontakti", "pasaule", "lapa"),
    "lt": ("ir", "yra", "skirta", "su", "nuo", "naujienos", "namai",
           "apie", "daugiau", "paslauga", "kontaktai", "pasaulis",
           "puslapis"),
    "ka": ("და", "ში", "თვის", "ერთად", "დან", "სიახლეები", "მთავარი",
           "შესახებ", "მეტი", "სერვისი", "კონტაქტი", "მსოფლიო",
           "გვერდი"),
    "hy": ("և", "մեջ", "համար", "հետ", "ից", "նորություններ", "գլխավոր",
           "մասին", "ավելին", "ծառայություն", "կապ", "աշխարհ", "էջ"),
    "az": ("və", "də", "üçün", "ilə", "dan", "xəbərlər", "ana",
           "haqqında", "daha", "xidmət", "əlaqə", "dünya", "səhifə"),
    "am": ("እና", "ውስጥ", "ለ", "ጋር", "ከ", "ዜና", "መነሻ", "ስለ",
           "ተጨማሪ", "አገልግሎት", "አድራሻ", "ዓለም", "ገጽ"),
    "so": ("iyo", "gudaha", "loogu", "la", "ka", "wararka", "guriga",
           "saabsan", "dheeraad", "adeeg", "xiriir", "adduunka",
           "bogga"),
    "sw": ("na", "katika", "kwa", "pamoja", "kutoka", "habari",
           "nyumbani", "kuhusu", "zaidi", "huduma", "mawasiliano",
           "dunia", "ukurasa"),
    "mn": ("ба", "дотор", "төлөө", "хамт", "аас", "мэдээ", "нүүр",
           "тухай", "илүү", "үйлчилгээ", "холбоо", "дэлхий", "хуудас"),
    "my": ("နှင့်", "တွင်", "အတွက်", "ဖြင့်", "မှ", "သတင်း",
           "ပင်မ", "အကြောင်း", "နောက်ထပ်", "ဝန်ဆောင်မှု",
           "ဆက်သွယ်ရန်", "ကမ္ဘာ", "စာမျက်နှာ"),
    "km": ("និង", "ក្នុង", "សម្រាប់", "ជាមួយ", "ពី", "ព័ត៌មាន",
           "ទំព័រដើម", "អំពី", "បន្ថែម", "សេវាកម្ម", "ទំនាក់ទំនង",
           "ពិភពលោក", "ទំព័រ"),
    "lo": ("ແລະ", "ໃນ", "ສໍາລັບ", "ກັບ", "ຈາກ", "ຂ່າວ", "ໜ້າຫຼັກ",
           "ກ່ຽວກັບ", "ເພີ່ມເຕີມ", "ບໍລິການ", "ຕິດຕໍ່", "ໂລກ",
           "ໜ້າ"),
    "ne": ("र", "मा", "लागि", "साथ", "बाट", "समाचार", "गृहपृष्ठ",
           "बारेमा", "थप", "सेवा", "सम्पर्क", "संसार", "पृष्ठ"),
    "si": ("සහ", "තුළ", "සඳහා", "සමඟ", "සිට", "පුවත්", "මුල්",
           "ගැන", "තවත්", "සේවාව", "සම්බන්ධ", "ලෝකය", "පිටුව"),
}

SUPPORTED_LANGUAGES: tuple[str, ...] = tuple(sorted(_WORDS))


class LanguageModel:
    """Unigram model for one language (generation + scoring)."""

    def __init__(self, code: str, words: tuple[str, ...]) -> None:
        if not words:
            raise UnknownLanguageError(f"no vocabulary for {code!r}")
        self.code = code
        self.words = words
        self._word_set = frozenset(words)

    def generate(self, seed: int, length: int = 24) -> str:
        """Deterministic snippet of ``length`` tokens.

        Snippets at least as long as the vocabulary contain every
        vocabulary token at least once — closely related languages
        (Croatian/Bosnian) differ in only a couple of function words,
        and a page long enough always surfaces them, which keeps
        generation/detection exact inverses.
        """
        rng = np.random.default_rng(seed)
        # Zipf-ish weights so common tokens dominate, as in real text.
        weights = 1.0 / np.arange(1, len(self.words) + 1)
        weights = weights / weights.sum()
        tokens: list[str] = []
        remaining = length
        if length >= len(self.words):
            tokens.extend(self.words)
            remaining -= len(self.words)
        picks = rng.choice(len(self.words), size=remaining, p=weights)
        tokens.extend(self.words[int(i)] for i in picks)
        order = rng.permutation(len(tokens))
        return " ".join(tokens[int(i)] for i in order)

    def log_likelihood(self, tokens: Iterable[str]) -> float:
        """Add-one-smoothed unigram log-likelihood."""
        vocabulary = len(self.words)
        total = 0.0
        for token in tokens:
            if token in self._word_set:
                # All in-vocabulary tokens share mass approximately.
                total += math.log(2.0 / (vocabulary + 1))
            else:
                total += math.log(1.0 / (10 * (vocabulary + 1)))
        return total


class LanguageDetector:
    """Pick the most likely language for a text snippet."""

    def __init__(self, models: dict[str, LanguageModel]) -> None:
        if not models:
            raise UnknownLanguageError("detector needs at least one model")
        self._models = models

    @property
    def languages(self) -> tuple[str, ...]:
        """Language codes the detector can identify."""
        return tuple(sorted(self._models))

    def detect(self, text: str) -> str:
        """Most likely language code (ties broken alphabetically)."""
        tokens = [t for t in text.split() if t]
        if not tokens:
            raise UnknownLanguageError("cannot detect language of empty text")
        best_code = None
        best_score = -math.inf
        for code in sorted(self._models):
            score = self._models[code].log_likelihood(tokens)
            if score > best_score:
                best_code, best_score = code, score
        assert best_code is not None
        return best_code

    def detect_ranked(self, text: str, top: int = 3) -> list[tuple[str, float]]:
        """The ``top`` most likely languages with log-likelihoods."""
        tokens = [t for t in text.split() if t]
        if not tokens:
            raise UnknownLanguageError("cannot detect language of empty text")
        scored = [
            (code, model.log_likelihood(tokens))
            for code, model in sorted(self._models.items())
        ]
        scored.sort(key=lambda cs: (-cs[1], cs[0]))
        return scored[:top]


_DETECTOR: LanguageDetector | None = None


def default_detector() -> LanguageDetector:
    """The process-wide detector over all supported languages."""
    global _DETECTOR
    if _DETECTOR is None:
        _DETECTOR = LanguageDetector(
            {
                code: LanguageModel(code, words)
                for code, words in _WORDS.items()
            }
        )
    return _DETECTOR


def generate_text(language: str, seed_key: str, length: int = 24) -> str:
    """Deterministic page snippet for a site in a given language.

    ``seed_key`` (typically the site's domain) pins the snippet so the
    same site always serves the same content.
    """
    words = _WORDS.get(language)
    if words is None:
        raise UnknownLanguageError(
            f"unsupported language {language!r}; see SUPPORTED_LANGUAGES"
        )
    model = LanguageModel(language, words)
    return model.generate(zlib.crc32(seed_key.encode()), length)
