"""Headline statistics reported in the paper's prose (Sections 3–7).

Beyond the score tables, the paper reports dozens of point statistics —
top-provider shares, insularity percentages, correlation coefficients,
class counts, longitudinal deltas.  They are collected here so that

1. the world generator can use them as calibration constraints, and
2. the benchmark harness can print "paper vs. measured" rows for every
   experiment.

All shares are fractions in [0, 1] unless the name says otherwise.
"""

from __future__ import annotations

from types import MappingProxyType

__all__ = [
    "HOSTING",
    "DNS",
    "CA",
    "TLD",
    "CORRELATIONS",
    "CLASS_COUNTS",
    "LONGITUDINAL",
    "CASE_STUDIES",
]


def _freeze(d: dict) -> MappingProxyType:
    return MappingProxyType(d)


# ---------------------------------------------------------------------------
# Hosting layer (Section 5)
# ---------------------------------------------------------------------------

HOSTING = _freeze(
    {
        # Top-provider share of selected countries (Section 5.1).
        "top_provider_share": _freeze(
            {"TH": 0.60, "US": 0.29, "IR": 0.14}
        ),
        # Figure 1: AZ and HK both have 59% on their top five hosts.
        "top5_share": _freeze({"AZ": 0.59, "HK": 0.59}),
        "az_top2_shares": (0.42, 0.05),
        "hk_top2_shares": (0.33, 0.12),
        # 90% of websites are hosted by fewer than this many providers
        # in every country.
        "p90_provider_bound": 206,
        # Iran: 90% of websites across 80 providers.
        "ir_p90_providers": 80,
        # Total provider counts for anchor countries (TH 2nd fewest=328,
        # IR 6th fewest=444, US 4th most=834).
        "n_providers": _freeze({"TH": 328, "IR": 444, "US": 834}),
        # Long-tail shares: providers with <100 sites in the dataset.
        "tail_share_under_100": _freeze({"IR": 0.17, "TH": 0.08}),
        # Regional-provider usage span across countries (Section 5.2).
        "regional_share_range": (0.12, 0.68),  # TT ... IR
        # Single dominant regional providers (Section 5.2).
        "dominant_regional": _freeze(
            {"BG": ("SuperHosting.BG", 0.22), "LT": ("UAB", 0.22)}
        ),
        # Hosting insularity (Section 5.3.1).
        "insularity": _freeze(
            {"US": 0.921, "IR": 0.648, "CZ": 0.545, "RU": 0.511, "TM": 0.04}
        ),
        "africa_mean_insularity": 0.03,
        # Countries where the top foreign host is not the U.S.
        "non_us_topped": ("IR", "CZ", "RU", "HU", "BY"),
        # Hetzner's global share (Section 5.3.3, Germany case study).
        "hetzner_global_share": 0.02,
    }
)

# ---------------------------------------------------------------------------
# DNS layer (Section 6)
# ---------------------------------------------------------------------------

DNS = _freeze(
    {
        "top_provider_share": _freeze({"ID": 0.65, "TH": 0.62, "CZ": 0.17}),
        # Cloudflare hosting shares for the same countries, for the
        # "up from hosting" deltas: ID 57%, TH 60%, CZ 17%.
        "hosting_cloudflare_share": _freeze(
            {"ID": 0.57, "TH": 0.60, "CZ": 0.17}
        ),
        # Czechia: large regional DNS share 47%, up from 39% in hosting.
        "cz_large_regional_share": _freeze({"hosting": 0.39, "dns": 0.47}),
        # Managed-DNS providers present in the top-10 of >100 countries.
        "managed_dns_providers": ("NSONE", "Neustar UltraDNS"),
    }
)

# ---------------------------------------------------------------------------
# CA layer (Section 7)
# ---------------------------------------------------------------------------

CA = _freeze(
    {
        "n_cas": 45,
        # The seven large global CAs (Section 7.1).
        "large_global_cas": (
            "Let's Encrypt",
            "DigiCert",
            "Sectigo",
            "Google",
            "Amazon",
            "GlobalSign",
            "GoDaddy",
        ),
        # The L-GP class accounts for 80% (IR) to 99.7% (RU) of sites,
        # ~98% on average.
        "l_gp_share_overall": 0.98,
        "l_gp_share_range": _freeze({"IR": 0.80, "RU": 0.997}),
        "l_gp_share_least_centralized": _freeze({"TW": 0.82, "JP": 0.85}),
        # DigiCert + Let's Encrypt account for 57% of sites overall,
        # 40–75% per country.
        "top2_overall_share": 0.57,
        "top2_country_range": (0.40, 0.75),
        # Slovakia, the most centralized: LE 55%, top-3 97%, top-7 98%.
        "sk_lets_encrypt_share": 0.55,
        "sk_top3_share": 0.97,
        "sk_top7_share": 0.98,
        # Asseco (Polish regional CA) usage.
        "asseco_share": _freeze({"PL": 0.19, "IR": 0.19, "AF": 0.05}),
        # CA insularity: only 24 countries use any in-country CA; the
        # most insular after the US.
        "n_insular_countries": 24,
        "insularity": _freeze({"PL": 0.19, "TW": 0.17, "JP": 0.14}),
        "eu_mean_score": 0.2220,
    }
)

# ---------------------------------------------------------------------------
# TLD layer (Appendix B)
# ---------------------------------------------------------------------------

TLD = _freeze(
    {
        "com_share": _freeze({"US": 0.77, "KG": 0.29}),
        "kg_shares": _freeze({".com": 0.29, ".ru": 0.22, ".kg": 0.12}),
        "de_usage": _freeze({"DE": 0.44, "AT": 0.14, "LU": 0.08, "CH": 0.07}),
        # Countries where .fr is popular (14 total, incl. France itself
        # is excluded in the paper's phrasing: these are external users).
        "fr_external_users": (
            "BF",
            "BJ",
            "CD",
            "CI",
            "CM",
            "DZ",
            "GP",
            "HT",
            "MG",
            "ML",
            "MQ",
            "RE",
            "SN",
            "TG",
        ),
    }
)

# ---------------------------------------------------------------------------
# Correlations (throughout)
# ---------------------------------------------------------------------------

CORRELATIONS = _freeze(
    {
        # Section 5.2: country S vs. XL-GP share.
        "xl_gp_share_vs_s": 0.90,
        # Section 5.2: country S vs. L-GP (non-XL) share.
        "l_gp_share_vs_s": 0.19,
        # Section 5.2: country S vs. large regional share (negative).
        "l_rp_share_vs_s": -0.72,
        # Section 5.3.1: hosting insularity vs. S (negative).
        "insularity_vs_s": -0.61,
        # Appendix B: hosting insularity vs. TLD insularity.
        "hosting_vs_tld_insularity": 0.70,
        # Section 3.4: Stanford vs. RIPE vantage points.
        "vantage_points": 0.96,
        # Section 5.4: 2023 vs. 2025 hosting S.
        "longitudinal": 0.98,
    }
)

# ---------------------------------------------------------------------------
# Class counts (Tables 1–3)
# ---------------------------------------------------------------------------

CLASS_COUNTS = _freeze(
    {
        "hosting": _freeze(
            {
                "XL-GP": 2,
                "L-GP": 6,
                "L-GP (R)": 2,
                "M-GP": 22,
                "S-GP": 73,
                "L-RP": 174,
                "S-RP": 587,
                "XS-RP": 11548,
            }
        ),
        "dns": _freeze(
            {
                "XL-GP": 2,
                "L-GP": 10,
                "L-GP (R)": 2,
                "M-GP": 17,
                "S-GP": 78,
                "L-RP": 273,
                "S-RP": 578,
                "XS-RP": 9049,
            }
        ),
        "ca": _freeze(
            {
                "L-GP": 7,
                "M-GP": 2,
                "L-RP": 11,
                "S-RP": 10,
                "XS-RP": 15,
            }
        ),
    }
)

# ---------------------------------------------------------------------------
# Longitudinal change (Section 5.4)
# ---------------------------------------------------------------------------

LONGITUDINAL = _freeze(
    {
        "old_snapshot": "2023-05",
        "new_snapshot": "2025-05",
        "score_correlation": 0.98,
        "br_scores": (0.1446, 0.2354),
        "br_cloudflare_shares": (0.36, 0.46),
        "ru_scores": (0.0554, 0.0499),
        "ru_us_share": (0.30, 0.29),
        "ru_local_share": (0.50, 0.56),
        "mean_cloudflare_delta_pts": 3.8,
        "tm_cloudflare_delta_pts": 11.3,
        "ru_cloudflare_delta_pts": -2.0,
        "cloudflare_decreasing": ("RU", "BY", "UZ", "MM"),
        "ru_jaccard": 0.4,
        "mean_jaccard": 0.37,
        "n_countries_less_us": 56,
    }
)

# ---------------------------------------------------------------------------
# Regional case studies (Section 5.3.3)
# ---------------------------------------------------------------------------

CASE_STUDIES = _freeze(
    {
        # Share of the country's sites hosted by Russian providers.
        "russia_dependence": _freeze(
            {
                "TM": 0.33,
                "TJ": 0.23,
                "KG": 0.22,
                "KZ": 0.21,
                "BY": 0.18,
                "UA": 0.02,
                "LT": 0.03,
                "EE": 0.05,
            }
        ),
        # Share of sites hosted by French providers.
        "france_dependence": _freeze(
            {
                "RE": 0.36,
                "GP": 0.34,
                "MQ": 0.35,
                "BF": 0.21,
                "CI": 0.18,
                "ML": 0.18,
            }
        ),
        # Slovakia's reliance on Czech hosting.
        "czechia_dependence": _freeze({"SK": 0.257}),
        # Austria's use of German large regional providers.
        "germany_dependence": _freeze({"AT": 0.03}),
        # Afghanistan's reliance on Iranian hosting (>20%).
        "iran_dependence": _freeze({"AF": 0.20}),
        # Language analysis: 31.4% of AF toplist is Persian; 60.8% of
        # those sites are hosted in Iran.
        "af_persian_share": 0.314,
        "af_persian_hosted_in_iran": 0.608,
    }
)
