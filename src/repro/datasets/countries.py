"""The 150-country reference dataset (paper Appendix E, Table 4).

Every country whose CrUX toplist had at least 10K websites, with its
UN M49 subregion and continent.  Also encodes the geopolitical
groupings the paper's case studies rely on (CIS, francophone Africa,
French administrative regions, DACH).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnknownCountryError

__all__ = [
    "Country",
    "COUNTRIES",
    "COUNTRY_CODES",
    "CONTINENTS",
    "SUBREGIONS",
    "country",
    "by_continent",
    "by_subregion",
    "CIS_RUSSIA_LEANING",
    "CIS_NON_RUSSIA_LEANING",
    "FRENCH_ADMINISTRATIVE",
    "FRANCOPHONE_AFRICA",
    "GERMANOPHONE",
    "CONTINENT_NAMES",
]


@dataclass(frozen=True, slots=True)
class Country:
    """One of the 150 countries in the study."""

    code: str
    name: str
    subregion: str
    continent: str


# (code, name, subregion, continent) — transcribed from Table 4.
_ROWS: tuple[tuple[str, str, str, str], ...] = (
    ("AE", "United Arab Emirates", "Western Asia", "AS"),
    ("AF", "Afghanistan", "Southern Asia", "AS"),
    ("AL", "Albania", "Southern Europe", "EU"),
    ("AM", "Armenia", "Western Asia", "AS"),
    ("AO", "Angola", "Middle Africa", "AF"),
    ("AR", "Argentina", "South America", "SA"),
    ("AT", "Austria", "Western Europe", "EU"),
    ("AU", "Australia", "Oceania", "OC"),
    ("AZ", "Azerbaijan", "Western Asia", "AS"),
    ("BA", "Bosnia and Herzegovina", "Southern Europe", "EU"),
    ("BD", "Bangladesh", "Southern Asia", "AS"),
    ("BE", "Belgium", "Western Europe", "EU"),
    ("BF", "Burkina Faso", "Western Africa", "AF"),
    ("BG", "Bulgaria", "Eastern Europe", "EU"),
    ("BH", "Bahrain", "Western Asia", "AS"),
    ("BJ", "Benin", "Western Africa", "AF"),
    ("BN", "Brunei Darussalam", "South-eastern Asia", "AS"),
    ("BO", "Bolivia", "South America", "SA"),
    ("BR", "Brazil", "South America", "SA"),
    ("BW", "Botswana", "Southern Africa", "AF"),
    ("BY", "Belarus", "Eastern Europe", "EU"),
    ("CA", "Canada", "Northern America", "NA"),
    ("CD", "Congo", "Middle Africa", "AF"),
    ("CH", "Switzerland", "Western Europe", "EU"),
    ("CI", "Côte d'Ivoire", "Western Africa", "AF"),
    ("CL", "Chile", "South America", "SA"),
    ("CM", "Cameroon", "Middle Africa", "AF"),
    ("CO", "Colombia", "South America", "SA"),
    ("CR", "Costa Rica", "Central America", "NA"),
    ("CU", "Cuba", "Caribbean", "NA"),
    ("CY", "Cyprus", "Western Asia", "AS"),
    ("CZ", "Czechia", "Eastern Europe", "EU"),
    ("DE", "Germany", "Western Europe", "EU"),
    ("DK", "Denmark", "Northern Europe", "EU"),
    ("DO", "Dominican Republic", "Caribbean", "NA"),
    ("DZ", "Algeria", "Northern Africa", "AF"),
    ("EC", "Ecuador", "South America", "SA"),
    ("EE", "Estonia", "Northern Europe", "EU"),
    ("EG", "Egypt", "Northern Africa", "AF"),
    ("ES", "Spain", "Southern Europe", "EU"),
    ("ET", "Ethiopia", "Eastern Africa", "AF"),
    ("FI", "Finland", "Northern Europe", "EU"),
    ("FR", "France", "Western Europe", "EU"),
    ("GA", "Gabon", "Middle Africa", "AF"),
    ("GB", "United Kingdom", "Northern Europe", "EU"),
    ("GE", "Georgia", "Western Asia", "AS"),
    ("GH", "Ghana", "Western Africa", "AF"),
    ("GP", "Guadeloupe", "Caribbean", "NA"),
    ("GR", "Greece", "Southern Europe", "EU"),
    ("GT", "Guatemala", "Central America", "NA"),
    ("HK", "Hong Kong", "Eastern Asia", "AS"),
    ("HN", "Honduras", "Central America", "NA"),
    ("HR", "Croatia", "Southern Europe", "EU"),
    ("HT", "Haiti", "Caribbean", "NA"),
    ("HU", "Hungary", "Eastern Europe", "EU"),
    ("ID", "Indonesia", "South-eastern Asia", "AS"),
    ("IE", "Ireland", "Northern Europe", "EU"),
    ("IL", "Israel", "Western Asia", "AS"),
    ("IN", "India", "Southern Asia", "AS"),
    ("IQ", "Iraq", "Western Asia", "AS"),
    ("IR", "Iran", "Southern Asia", "AS"),
    ("IS", "Iceland", "Northern Europe", "EU"),
    ("IT", "Italy", "Southern Europe", "EU"),
    ("JM", "Jamaica", "Caribbean", "NA"),
    ("JO", "Jordan", "Western Asia", "AS"),
    ("JP", "Japan", "Eastern Asia", "AS"),
    ("KE", "Kenya", "Eastern Africa", "AF"),
    ("KG", "Kyrgyzstan", "Central Asia", "AS"),
    ("KH", "Cambodia", "South-eastern Asia", "AS"),
    ("KR", "Korea", "Eastern Asia", "AS"),
    ("KW", "Kuwait", "Western Asia", "AS"),
    ("KZ", "Kazakhstan", "Central Asia", "AS"),
    ("LA", "Laos", "South-eastern Asia", "AS"),
    ("LB", "Lebanon", "Western Asia", "AS"),
    ("LK", "Sri Lanka", "Southern Asia", "AS"),
    ("LT", "Lithuania", "Northern Europe", "EU"),
    ("LU", "Luxembourg", "Western Europe", "EU"),
    ("LV", "Latvia", "Northern Europe", "EU"),
    ("LY", "Libya", "Northern Africa", "AF"),
    ("MA", "Morocco", "Northern Africa", "AF"),
    ("MD", "Moldova", "Eastern Europe", "EU"),
    ("ME", "Montenegro", "Southern Europe", "EU"),
    ("MG", "Madagascar", "Eastern Africa", "AF"),
    ("MK", "North Macedonia", "Southern Europe", "EU"),
    ("ML", "Mali", "Western Africa", "AF"),
    ("MM", "Myanmar", "South-eastern Asia", "AS"),
    ("MN", "Mongolia", "Eastern Asia", "AS"),
    ("MO", "Macao", "Eastern Asia", "AS"),
    ("MQ", "Martinique", "Caribbean", "NA"),
    ("MT", "Malta", "Southern Europe", "EU"),
    ("MU", "Mauritius", "Eastern Africa", "AF"),
    ("MV", "Maldives", "Southern Asia", "AS"),
    ("MW", "Malawi", "Eastern Africa", "AF"),
    ("MX", "Mexico", "Central America", "NA"),
    ("MY", "Malaysia", "South-eastern Asia", "AS"),
    ("MZ", "Mozambique", "Eastern Africa", "AF"),
    ("NA", "Namibia", "Southern Africa", "AF"),
    ("NG", "Nigeria", "Western Africa", "AF"),
    ("NI", "Nicaragua", "Central America", "NA"),
    ("NL", "Netherlands", "Western Europe", "EU"),
    ("NO", "Norway", "Northern Europe", "EU"),
    ("NP", "Nepal", "Southern Asia", "AS"),
    ("NZ", "New Zealand", "Oceania", "OC"),
    ("OM", "Oman", "Western Asia", "AS"),
    ("PA", "Panama", "Central America", "NA"),
    ("PE", "Peru", "South America", "SA"),
    ("PG", "Papua New Guinea", "Oceania", "OC"),
    ("PH", "Philippines", "South-eastern Asia", "AS"),
    ("PK", "Pakistan", "Southern Asia", "AS"),
    ("PL", "Poland", "Eastern Europe", "EU"),
    ("PR", "Puerto Rico", "Caribbean", "NA"),
    ("PS", "Palestine", "Western Asia", "AS"),
    ("PT", "Portugal", "Southern Europe", "EU"),
    ("PY", "Paraguay", "South America", "SA"),
    ("QA", "Qatar", "Western Asia", "AS"),
    ("RE", "Réunion", "Eastern Africa", "AF"),
    ("RO", "Romania", "Eastern Europe", "EU"),
    ("RS", "Serbia", "Southern Europe", "EU"),
    ("RU", "Russia", "Eastern Europe", "EU"),
    ("RW", "Rwanda", "Eastern Africa", "AF"),
    ("SA", "Saudi Arabia", "Western Asia", "AS"),
    ("SD", "Sudan", "Northern Africa", "AF"),
    ("SE", "Sweden", "Northern Europe", "EU"),
    ("SG", "Singapore", "South-eastern Asia", "AS"),
    ("SI", "Slovenia", "Southern Europe", "EU"),
    ("SK", "Slovakia", "Eastern Europe", "EU"),
    ("SN", "Senegal", "Western Africa", "AF"),
    ("SO", "Somalia", "Eastern Africa", "AF"),
    ("SV", "El Salvador", "Central America", "NA"),
    ("SY", "Syria", "Western Asia", "AS"),
    ("TG", "Togo", "Western Africa", "AF"),
    ("TH", "Thailand", "South-eastern Asia", "AS"),
    ("TJ", "Tajikistan", "Central Asia", "AS"),
    ("TM", "Turkmenistan", "Central Asia", "AS"),
    ("TN", "Tunisia", "Northern Africa", "AF"),
    ("TR", "Turkey", "Western Asia", "AS"),
    ("TT", "Trinidad and Tobago", "Caribbean", "NA"),
    ("TW", "Taiwan", "Eastern Asia", "AS"),
    ("TZ", "Tanzania", "Eastern Africa", "AF"),
    ("UA", "Ukraine", "Eastern Europe", "EU"),
    ("UG", "Uganda", "Eastern Africa", "AF"),
    ("US", "United States", "Northern America", "NA"),
    ("UY", "Uruguay", "South America", "SA"),
    ("UZ", "Uzbekistan", "Central Asia", "AS"),
    ("VE", "Venezuela", "South America", "SA"),
    ("VN", "Viet Nam", "South-eastern Asia", "AS"),
    ("YE", "Yemen", "Western Asia", "AS"),
    ("ZA", "South Africa", "Southern Africa", "AF"),
    ("ZM", "Zambia", "Eastern Africa", "AF"),
    ("ZW", "Zimbabwe", "Eastern Africa", "AF"),
)

COUNTRIES: dict[str, Country] = {
    code: Country(code, name, subregion, continent)
    for code, name, subregion, continent in _ROWS
}

#: All 150 ISO codes in alphabetical order.
COUNTRY_CODES: tuple[str, ...] = tuple(sorted(COUNTRIES))

CONTINENTS: tuple[str, ...] = ("AF", "AS", "EU", "NA", "OC", "SA")

CONTINENT_NAMES: dict[str, str] = {
    "AF": "Africa",
    "AS": "Asia",
    "EU": "Europe",
    "NA": "North America",
    "OC": "Oceania",
    "SA": "South America",
}

SUBREGIONS: tuple[str, ...] = tuple(
    sorted({c.subregion for c in COUNTRIES.values()})
)


def country(code: str) -> Country:
    """Look up a country by ISO code, raising a library error if absent."""
    try:
        return COUNTRIES[code.upper()]
    except KeyError:
        raise UnknownCountryError(
            f"{code!r} is not one of the 150 countries in the dataset"
        ) from None


def by_continent(continent: str) -> list[Country]:
    """All countries on a continent, alphabetical by code."""
    selected = [
        COUNTRIES[code]
        for code in COUNTRY_CODES
        if COUNTRIES[code].continent == continent
    ]
    if not selected:
        raise UnknownCountryError(f"unknown continent {continent!r}")
    return selected


def by_subregion(subregion: str) -> list[Country]:
    """All countries in a UN subregion, alphabetical by code."""
    selected = [
        COUNTRIES[code]
        for code in COUNTRY_CODES
        if COUNTRIES[code].subregion == subregion
    ]
    if not selected:
        raise UnknownCountryError(f"unknown subregion {subregion!r}")
    return selected


# ---------------------------------------------------------------------------
# Geopolitical groupings used by the Section 5.3.3 case studies.
# ---------------------------------------------------------------------------

#: CIS countries with heavy reliance on Russian providers (Section 5.3.3,
#: listed with the paper's measured dependence shares in paper_anchors).
CIS_RUSSIA_LEANING: frozenset[str] = frozenset(
    {"TM", "TJ", "KG", "KZ", "BY", "UZ", "AM", "AZ", "MD"}
)

#: Post-Soviet states that do *not* heavily use Russian providers.
CIS_NON_RUSSIA_LEANING: frozenset[str] = frozenset({"UA", "LT", "EE", "LV", "GE"})

#: French administrative regions, dominated by French regional providers.
FRENCH_ADMINISTRATIVE: frozenset[str] = frozenset({"RE", "GP", "MQ"})

#: Former French colonies in Africa that rely on French hosting / .fr.
FRANCOPHONE_AFRICA: frozenset[str] = frozenset(
    {"BF", "CI", "ML", "BJ", "CD", "CM", "DZ", "MG", "SN", "TG", "HT"}
)

#: Countries where German is dominant (DE providers / .de spillover).
GERMANOPHONE: frozenset[str] = frozenset({"DE", "AT", "CH", "LU"})
