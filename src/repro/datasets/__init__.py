"""Embedded reference datasets.

Static data transcribed from the paper: the 150-country reference
(Table 4 / Appendix E), the published per-country centralization scores
(Tables 5–8), the prose anchor statistics, and the named provider / CA
seed catalogs used by the world generator.
"""

from .countries import (
    CIS_NON_RUSSIA_LEANING,
    CIS_RUSSIA_LEANING,
    CONTINENT_NAMES,
    CONTINENTS,
    COUNTRIES,
    COUNTRY_CODES,
    FRANCOPHONE_AFRICA,
    FRENCH_ADMINISTRATIVE,
    GERMANOPHONE,
    SUBREGIONS,
    Country,
    by_continent,
    by_subregion,
    country,
)
from .paper_scores import (
    LAYERS,
    PAPER_LAYER_MEANS,
    PAPER_SCORES,
    paper_rank,
    paper_scores,
)
from .providers import (
    CA_CATALOG,
    CLOUDFLARE,
    AMAZON,
    GLOBAL_DNS_SEEDS,
    GLOBAL_HOSTING_SEEDS,
    HOSTING_CA_PARTNERSHIPS,
    LARGE_GLOBAL_CAS,
    NAMED_REGIONAL_SEEDS,
    CASeed,
    ProviderSeed,
)
from . import paper_anchors

__all__ = [
    "Country",
    "COUNTRIES",
    "COUNTRY_CODES",
    "CONTINENTS",
    "CONTINENT_NAMES",
    "SUBREGIONS",
    "country",
    "by_continent",
    "by_subregion",
    "CIS_RUSSIA_LEANING",
    "CIS_NON_RUSSIA_LEANING",
    "FRENCH_ADMINISTRATIVE",
    "FRANCOPHONE_AFRICA",
    "GERMANOPHONE",
    "LAYERS",
    "PAPER_SCORES",
    "PAPER_LAYER_MEANS",
    "paper_scores",
    "paper_rank",
    "paper_anchors",
    "ProviderSeed",
    "CASeed",
    "GLOBAL_HOSTING_SEEDS",
    "GLOBAL_DNS_SEEDS",
    "NAMED_REGIONAL_SEEDS",
    "CA_CATALOG",
    "LARGE_GLOBAL_CAS",
    "HOSTING_CA_PARTNERSHIPS",
    "CLOUDFLARE",
    "AMAZON",
]
