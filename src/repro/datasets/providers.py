"""Named provider and CA seed catalogs.

The world generator creates thousands of synthetic regional providers,
but the providers the paper names — the hyperscalers, the managed DNS
operators, the 45 certificate authorities, the regionally dominant
hosts — are seeded here with their real home countries so the
regionalization analyses (insularity, cross-border dependence, provider
classes) reproduce the paper's named findings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ProviderSeed",
    "CASeed",
    "GLOBAL_HOSTING_SEEDS",
    "GLOBAL_DNS_SEEDS",
    "NAMED_REGIONAL_SEEDS",
    "CA_CATALOG",
    "LARGE_GLOBAL_CAS",
    "HOSTING_CA_PARTNERSHIPS",
    "CLOUDFLARE",
    "AMAZON",
]


@dataclass(frozen=True, slots=True)
class ProviderSeed:
    """A named hosting/DNS provider with its headquarters country.

    ``tier`` is the class the paper assigns (or implies) for the
    provider; the classifier must *recover* these labels from usage
    data, so the tier is a test expectation, not an input to analysis.
    """

    name: str
    home_country: str
    tier: str
    anycast: bool = False
    offers_dns: bool = True


CLOUDFLARE = "Cloudflare"
AMAZON = "Amazon"

#: The global hosting providers named in Section 5 (Table 1 examples).
GLOBAL_HOSTING_SEEDS: tuple[ProviderSeed, ...] = (
    ProviderSeed(CLOUDFLARE, "US", "XL-GP", anycast=True),
    ProviderSeed(AMAZON, "US", "XL-GP", anycast=True),
    ProviderSeed("Google", "US", "L-GP", anycast=True),
    ProviderSeed("Akamai", "US", "L-GP", anycast=True),
    ProviderSeed("Microsoft", "US", "L-GP", anycast=True),
    ProviderSeed("Fastly", "US", "L-GP", anycast=True),
    ProviderSeed("DigitalOcean", "US", "L-GP"),
    ProviderSeed("GoDaddy Hosting", "US", "L-GP"),
    # The two "large global with regional skew" providers.
    ProviderSeed("OVH", "FR", "L-GP (R)"),
    ProviderSeed("Hetzner", "DE", "L-GP (R)"),
    # Medium global examples.
    ProviderSeed("Incapsula", "US", "M-GP", anycast=True),
    ProviderSeed("Linode", "US", "M-GP"),
    ProviderSeed("Vultr", "US", "M-GP"),
    ProviderSeed("Leaseweb", "NL", "M-GP"),
    # Small global examples.
    ProviderSeed("Wix", "IL", "S-GP"),
    ProviderSeed("Squarespace", "US", "S-GP"),
    ProviderSeed("Netlify", "US", "S-GP"),
)

#: Managed DNS operators that only appear at the DNS layer (Section 6.2).
GLOBAL_DNS_SEEDS: tuple[ProviderSeed, ...] = (
    ProviderSeed("NSONE", "US", "L-GP", anycast=True),
    ProviderSeed("Neustar UltraDNS", "US", "L-GP", anycast=True),
    ProviderSeed("DNSimple", "US", "M-GP"),
    ProviderSeed("Sucuri", "US", "S-GP"),
)

#: Regionally dominant providers the paper names (Sections 5.2–5.3.3).
NAMED_REGIONAL_SEEDS: tuple[ProviderSeed, ...] = (
    ProviderSeed("Beget LLC", "RU", "L-RP"),
    ProviderSeed("Timeweb", "RU", "L-RP"),
    ProviderSeed("Selectel", "RU", "L-RP"),
    ProviderSeed("REG.RU", "RU", "L-RP"),
    ProviderSeed("SuperHosting.BG", "BG", "L-RP"),
    ProviderSeed("UAB Interneto vizija", "LT", "L-RP"),
    ProviderSeed("Alibaba", "CN", "L-RP"),
    ProviderSeed("Tencent", "CN", "L-RP"),
    ProviderSeed("Sakura Internet", "JP", "L-RP"),
    ProviderSeed("GMO Internet", "JP", "L-RP"),
    ProviderSeed("Kakao", "KR", "L-RP"),
    ProviderSeed("Naver Cloud", "KR", "L-RP"),
    ProviderSeed("Online S.A.S", "FR", "L-RP"),
    ProviderSeed("Gandi", "FR", "L-RP"),
    ProviderSeed("WEDOS", "CZ", "L-RP"),
    ProviderSeed("Forpsi", "CZ", "L-RP"),
    ProviderSeed("Seznam.cz", "CZ", "L-RP"),
    ProviderSeed("Arvan Cloud", "IR", "L-RP"),
    ProviderSeed("Iran Server", "IR", "L-RP"),
    ProviderSeed("Pars Online", "IR", "L-RP"),
    ProviderSeed("Loopia", "SE", "S-RP"),
    ProviderSeed("Forthnet", "GR", "XS-RP"),
)


@dataclass(frozen=True, slots=True)
class CASeed:
    """A certificate authority with its owner's home country."""

    name: str
    home_country: str
    tier: str


#: The seven dominant CAs (Section 7.1).
LARGE_GLOBAL_CAS: tuple[str, ...] = (
    "Let's Encrypt",
    "DigiCert",
    "Sectigo",
    "Google",
    "Amazon",
    "GlobalSign",
    "GoDaddy",
)

#: All 45 CAs observed in the dataset (Table 3: 7 + 2 + 11 + 10 + 15).
CA_CATALOG: tuple[CASeed, ...] = (
    # Large global (7).
    CASeed("Let's Encrypt", "US", "L-GP"),
    CASeed("DigiCert", "US", "L-GP"),
    CASeed("Sectigo", "US", "L-GP"),
    CASeed("Google", "US", "L-GP"),
    CASeed("Amazon", "US", "L-GP"),
    CASeed("GlobalSign", "BE", "L-GP"),
    CASeed("GoDaddy", "US", "L-GP"),
    # Medium global (2).
    CASeed("Entrust", "US", "M-GP"),
    CASeed("IdenTrust", "US", "M-GP"),
    # Large regional (11).
    CASeed("Asseco", "PL", "L-RP"),
    CASeed("SECOM", "JP", "L-RP"),
    CASeed("Cybertrust Japan", "JP", "L-RP"),
    CASeed("TWCA", "TW", "L-RP"),
    CASeed("Chunghwa Telecom", "TW", "L-RP"),
    CASeed("Actalis", "IT", "L-RP"),
    CASeed("Buypass", "NO", "L-RP"),
    CASeed("SwissSign", "CH", "L-RP"),
    CASeed("Certigna", "FR", "L-RP"),
    CASeed("ACCV", "ES", "L-RP"),
    CASeed("Telia", "FI", "L-RP"),
    # Small regional (10).
    CASeed("SSL.com", "US", "S-RP"),
    CASeed("Izenpe", "ES", "S-RP"),
    CASeed("Disig", "SK", "S-RP"),
    CASeed("e-Tugra", "TR", "S-RP"),
    CASeed("TurkTrust", "TR", "S-RP"),
    CASeed("Firmaprofesional", "ES", "S-RP"),
    CASeed("Microsec", "HU", "S-RP"),
    CASeed("NetLock", "HU", "S-RP"),
    CASeed("Certinomis", "FR", "S-RP"),
    CASeed("KamuSM", "TR", "S-RP"),
    # Extra small regional (15).
    CASeed("TrustCor", "PA", "XS-RP"),
    CASeed("E-Sign", "CL", "XS-RP"),
    CASeed("Serasa", "BR", "XS-RP"),
    CASeed("Certisign", "BR", "XS-RP"),
    CASeed("ANF", "ES", "XS-RP"),
    CASeed("Camerfirma", "ES", "XS-RP"),
    CASeed("Halcom", "SI", "XS-RP"),
    CASeed("Pos Digicert", "MY", "XS-RP"),
    CASeed("MSC Trustgate", "MY", "XS-RP"),
    CASeed("Certicamara", "CO", "XS-RP"),
    CASeed("Echoworx", "CA", "XS-RP"),
    CASeed("LuxTrust", "LU", "XS-RP"),
    CASeed("Sonera", "FI", "XS-RP"),
    CASeed("Thai Digital ID", "TH", "XS-RP"),
    CASeed("Indian CCA", "IN", "XS-RP"),
)

#: Hosting providers that provision certificates for hosted sites
#: (Section 7.1), mapping host -> the CAs it issues from, in preference
#: order with weights.
HOSTING_CA_PARTNERSHIPS: dict[str, tuple[tuple[str, float], ...]] = {
    CLOUDFLARE: (
        ("Let's Encrypt", 0.45),
        ("DigiCert", 0.25),
        ("Google", 0.20),
        ("Sectigo", 0.10),
    ),
    AMAZON: (("Amazon", 0.85), ("DigiCert", 0.15)),
    "Google": (("Google", 0.8), ("DigiCert", 0.2)),
    "Microsoft": (("DigiCert", 0.7), ("Sectigo", 0.3)),
    "Incapsula": (("GlobalSign", 1.0),),
    "GoDaddy Hosting": (("GoDaddy", 0.9), ("Sectigo", 0.1)),
}
