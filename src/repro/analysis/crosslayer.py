"""Cross-layer coupling analysis (the paper's §8 discussion).

The paper hypothesizes that "part of the centralization we see on the
web is a result of provider, not operator, choice": hosting and DNS are
bundled (Cloudflare's CDN requires its DNS), and hosting providers
partner with specific CAs.  These couplings are measurable from the
per-site records:

* :func:`hosting_dns_bundling` — per-country fraction of sites whose
  hosting and DNS organization coincide, and the bundling rate of
  individual providers.
* :func:`ca_attribution` — how much of each CA's usage flows through
  hosting partnerships rather than operator choice.
* :func:`layer_score_coupling` — correlation of per-country scores
  between layer pairs (hosting↔DNS strong; hosting↔CA weak/negative,
  the CZ/SK flip).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.correlation import CorrelationResult, pearson
from ..datasets.providers import HOSTING_CA_PARTNERSHIPS
from .study import DependenceStudy

__all__ = [
    "BundlingReport",
    "hosting_dns_bundling",
    "ca_attribution",
    "layer_score_coupling",
]


@dataclass(frozen=True)
class BundlingReport:
    """Hosting/DNS bundling measurements."""

    #: country -> fraction of sites with hosting org == DNS org.
    per_country: dict[str, float]
    #: provider -> fraction of its hosted sites also using it for DNS.
    per_provider: dict[str, float]

    @property
    def overall(self) -> float:
        """Mean of the per-country values."""
        values = self.per_country.values()
        return sum(values) / len(values) if values else 0.0


def hosting_dns_bundling(study: DependenceStudy) -> BundlingReport:
    """Measure how often sites reuse their host as DNS operator."""
    per_country: dict[str, float] = {}
    same_by_provider: Counter[str] = Counter()
    total_by_provider: Counter[str] = Counter()
    for cc in study.countries:
        same = 0
        total = 0
        for record in study.dataset.records(cc):
            if record.hosting_org is None or record.dns_org is None:
                continue
            total += 1
            total_by_provider[record.hosting_org] += 1
            if record.hosting_org == record.dns_org:
                same += 1
                same_by_provider[record.hosting_org] += 1
        per_country[cc] = same / total if total else 0.0
    per_provider = {
        provider: same_by_provider.get(provider, 0) / count
        for provider, count in total_by_provider.items()
        if count >= 20
    }
    return BundlingReport(
        per_country=per_country, per_provider=per_provider
    )


def ca_attribution(study: DependenceStudy) -> dict[str, dict[str, float]]:
    """Split each CA's usage into partner-host vs independent flows.

    Returns ``ca -> {"via_partner_host": share, "independent": share}``
    where ``via_partner_host`` counts sites whose hosting provider
    lists the CA as an issuance partner — the "provider choice"
    component of CA centralization.
    """
    partner_of_host: dict[str, set[str]] = {
        host: {ca for ca, _ in partnerships}
        for host, partnerships in HOSTING_CA_PARTNERSHIPS.items()
    }
    via_partner: Counter[str] = Counter()
    total: Counter[str] = Counter()
    for cc in study.countries:
        for record in study.dataset.records(cc):
            if record.ca_owner is None or record.hosting_org is None:
                continue
            total[record.ca_owner] += 1
            if record.ca_owner in partner_of_host.get(
                record.hosting_org, ()
            ):
                via_partner[record.ca_owner] += 1
    out: dict[str, dict[str, float]] = {}
    for ca, count in total.items():
        partner_share = via_partner.get(ca, 0) / count
        out[ca] = {
            "via_partner_host": partner_share,
            "independent": 1.0 - partner_share,
        }
    return out


def layer_score_coupling(
    study: DependenceStudy,
) -> dict[tuple[str, str], CorrelationResult]:
    """Correlate per-country scores between every layer pair."""
    layers = ("hosting", "dns", "ca", "tld")
    countries = study.countries
    scores = {
        layer: [study.layer(layer).scores[cc] for cc in countries]
        for layer in layers
    }
    out: dict[tuple[str, str], CorrelationResult] = {}
    for i, a in enumerate(layers):
        for b in layers[i + 1 :]:
            out[(a, b)] = pearson(scores[a], scores[b])
    return out
