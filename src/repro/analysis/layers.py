"""Per-layer analysis: the Sections 5–7 computations.

:class:`LayerAnalysis` wraps one infrastructure layer of a measurement
dataset and computes everything the paper reports per layer: country
centralization scores, insularity, provider usage/endemicity features,
affinity-propagation classification into the eight provider classes,
and per-country class breakdowns (the Figure 7/14/15/16 stacked bars).
"""

from __future__ import annotations

from functools import cached_property

from ..core.centralization import centralization_score, top_n_share
from ..core.classification import (
    ClassificationResult,
    ClassThresholds,
    ProviderClass,
    ProviderFeatures,
    classify_providers,
)
from ..core.distributions import ProviderDistribution
from ..core.regionalization import UsageCurve, endemicity_ratio, usage
from ..datasets.providers import AMAZON, CLOUDFLARE
from ..errors import UnknownLayerError
from ..pipeline.records import LAYER_FIELDS, MeasurementDataset

__all__ = ["LayerAnalysis", "CountryBreakdown"]


class CountryBreakdown(dict):
    """Per-country share of each provider class (plus named XL-GPs).

    A thin dict subclass mapping breakdown keys — ``"Cloudflare"``,
    ``"Amazon"``, and each :class:`ProviderClass` value — to the
    fraction of the country's measured sites they serve.
    """

    KEYS = (
        CLOUDFLARE,
        AMAZON,
        ProviderClass.L_GP.value,
        ProviderClass.L_GP_R.value,
        ProviderClass.M_GP.value,
        ProviderClass.S_GP.value,
        ProviderClass.L_RP.value,
        ProviderClass.S_RP.value,
        ProviderClass.XS_RP.value,
    )


class LayerAnalysis:
    """All per-layer statistics for one measured layer."""

    def __init__(
        self,
        dataset: MeasurementDataset,
        layer: str,
        *,
        thresholds: ClassThresholds | None = None,
    ) -> None:
        if layer not in LAYER_FIELDS:
            raise UnknownLayerError(f"unknown layer {layer!r}")
        self.dataset = dataset
        self.layer = layer
        self._thresholds = thresholds

    # ------------------------------------------------------------------
    # Distributions & scores
    # ------------------------------------------------------------------

    @cached_property
    def countries(self) -> list[str]:
        """Country codes covered, sorted."""
        return self.dataset.countries

    def distribution(self, country: str) -> ProviderDistribution:
        """Observed provider distribution for one country."""
        return self.dataset.distribution(country, self.layer)

    @cached_property
    def scores(self) -> dict[str, float]:
        """Centralization Score per country (the Tables 5–8 columns)."""
        return {
            cc: centralization_score(self.distribution(cc))
            for cc in self.countries
        }

    @cached_property
    def ranking(self) -> list[tuple[str, float]]:
        """Countries most-centralized first."""
        return sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0]))

    def rank_of(self, country: str) -> int:
        """1-indexed centralization rank (1 = most centralized)."""
        for rank, (cc, _) in enumerate(self.ranking, start=1):
            if cc == country:
                return rank
        raise UnknownLayerError(f"country {country!r} not in ranking")

    def top_n_share(self, country: str, n: int) -> float:
        """Share of a country's sites on its top-N providers."""
        return top_n_share(self.distribution(country), n)

    def providers_covering(self, country: str, fraction: float) -> int:
        """Providers needed to cover a site fraction."""
        return self.distribution(country).providers_covering(fraction)

    # ------------------------------------------------------------------
    # Regionalization
    # ------------------------------------------------------------------

    @cached_property
    def provider_homes(self) -> dict[str, str]:
        """Home country of every provider at this layer."""
        return self.dataset.provider_countries(self.layer)

    @cached_property
    def insularity(self) -> dict[str, float]:
        """Fraction of each country's sites served from in-country.

        For the TLD layer (which has no provider home country in the
        measurement records) the paper's convention applies: a site is
        insular when it uses the local ccTLD — with .com counted as
        local to the U.S. (Figure 22's note on the historical role of
        the U.S. government in .com).
        """
        if self.layer == "tld":
            from ..net.psl import CCTLD_OF_COUNTRY

            out: dict[str, float] = {}
            for cc in self.countries:
                labels = [
                    t
                    for t in self.dataset.layer_labels(cc, "tld")
                    if t is not None
                ]
                if not labels:
                    out[cc] = 0.0
                    continue
                own = {CCTLD_OF_COUNTRY[cc]}
                if cc == "US":
                    own.add("com")
                out[cc] = sum(1 for t in labels if t in own) / len(labels)
            return out
        homes = self.provider_homes
        out = {}
        for cc in self.countries:
            labels = [
                p
                for p in self.dataset.layer_labels(cc, self.layer)
                if p is not None
            ]
            out[cc] = (
                sum(1 for p in labels if homes.get(p) == cc) / len(labels)
                if labels
                else 0.0
            )
        return out

    def dependence_on(self, country: str, foreign: str) -> float:
        """Share of ``country``'s sites served from ``foreign``."""
        homes = self.provider_homes
        labels = [
            p
            for p in self.dataset.layer_labels(country, self.layer)
            if p is not None
        ]
        if not labels:
            return 0.0
        return sum(1 for p in labels if homes.get(p) == foreign) / len(labels)

    def country_dependencies(self, country: str) -> dict[str, float]:
        """Breakdown of a country's sites by serving provider's home."""
        homes = self.provider_homes
        labels = [
            p
            for p in self.dataset.layer_labels(country, self.layer)
            if p is not None
        ]
        out: dict[str, float] = {}
        for p in labels:
            home = homes.get(p, "??")
            out[home] = out.get(home, 0.0) + 1.0
        total = sum(out.values())
        return {home: share / total for home, share in out.items()}

    # ------------------------------------------------------------------
    # Usage / endemicity / classification
    # ------------------------------------------------------------------

    @cached_property
    def usage_matrix(self) -> dict[str, dict[str, float]]:
        """provider -> country -> percent-of-sites matrix."""
        return self.dataset.usage_matrix(self.layer)

    def usage_curve(self, provider: str) -> UsageCurve:
        """A provider's sorted per-country usage curve."""
        return UsageCurve.from_usage(self.usage_matrix[provider])

    @cached_property
    def provider_features(self) -> dict[str, ProviderFeatures]:
        """(usage U, endemicity ratio E_R) per provider (Section 3.3)."""
        features: dict[str, ProviderFeatures] = {}
        for provider, per_country in self.usage_matrix.items():
            curve = UsageCurve.from_usage(per_country)
            features[provider] = ProviderFeatures(
                usage=usage(curve),
                endemicity_ratio=endemicity_ratio(curve),
            )
        return features

    @cached_property
    def classification(self) -> ClassificationResult:
        """Affinity-propagation provider classes (Tables 1–3).

        Unless explicit thresholds were supplied, the class-size cuts
        are scaled to this study's country count (usage sums over
        countries, so a 16-country study has 16/150 of the usage range).
        """
        thresholds = self._thresholds
        if thresholds is None:
            thresholds = ClassThresholds.scaled_for(len(self.countries))
        return classify_providers(
            self.provider_features, thresholds=thresholds
        )

    def class_counts(self) -> dict[ProviderClass, int]:
        """Number of providers per class."""
        return self.classification.class_counts()

    def class_share(self, country: str, cls: ProviderClass) -> float:
        """Share of a country's sites served by one provider class."""
        labels = self.classification.labels
        dist = self.distribution(country)
        return sum(
            count
            for name, count in dist.as_dict().items()
            if labels.get(name) is cls
        ) / dist.total

    def breakdown(self, country: str) -> CountryBreakdown:
        """Figure 7-style stacked breakdown for one country.

        Cloudflare and Amazon are split out of their class; the
        remaining classes cover everything else.
        """
        labels = self.classification.labels
        dist = self.distribution(country)
        shares = CountryBreakdown(
            {key: 0.0 for key in CountryBreakdown.KEYS}
        )
        for name, count in dist.as_dict().items():
            share = count / dist.total
            if name == CLOUDFLARE and self.layer in ("hosting", "dns"):
                shares[CLOUDFLARE] += share
                continue
            if name == AMAZON and self.layer in ("hosting", "dns"):
                shares[AMAZON] += share
                continue
            cls = labels.get(name)
            if cls is not None:
                # Layers without the Cloudflare/Amazon split-out (CA,
                # TLD) may legitimately produce XL-GP entries, which are
                # not in the default key set.
                shares[cls.value] = shares.get(cls.value, 0.0) + share
        return shares

    def regional_share(self, country: str) -> float:
        """Share of a country's sites on regional-class providers."""
        return sum(
            self.class_share(country, cls)
            for cls in (
                ProviderClass.L_RP,
                ProviderClass.S_RP,
                ProviderClass.XS_RP,
            )
        )
