"""Regional aggregation: subregion/continent views of dependence.

Implements the geography-level computations behind Figures 5 and 8–10:
mean centralization and insularity per UN subregion and continent, and
the continent-to-continent dependence matrices (provider headquarters,
IP geolocation, nameserver geolocation with anycast as its own
category).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..datasets.countries import COUNTRIES, CONTINENTS
from ..errors import UnknownLayerError
from ..pipeline.records import MeasurementDataset
from .layers import LayerAnalysis

__all__ = [
    "subregion_means",
    "continent_means",
    "DependenceMatrix",
    "provider_hq_matrix",
    "ip_geolocation_matrix",
    "ns_geolocation_matrix",
]


def _grouped_mean(
    per_country: dict[str, float], key: str
) -> dict[str, float]:
    groups: dict[str, list[float]] = {}
    for cc, value in per_country.items():
        group = getattr(COUNTRIES[cc], key)
        groups.setdefault(group, []).append(value)
    return {
        group: sum(values) / len(values)
        for group, values in sorted(groups.items())
    }


def subregion_means(per_country: dict[str, float]) -> dict[str, float]:
    """Mean of a per-country statistic by UN subregion (Figures 9/10)."""
    return _grouped_mean(per_country, "subregion")


def continent_means(per_country: dict[str, float]) -> dict[str, float]:
    """Mean of a per-country statistic by continent."""
    return _grouped_mean(per_country, "continent")


@dataclass(frozen=True, slots=True)
class DependenceMatrix:
    """Rows: the continent where websites are popular; columns: the
    continent their infrastructure depends on (plus special columns
    like ``"anycast"`` and ``"??"`` for unattributable sites)."""

    rows: tuple[str, ...]
    columns: tuple[str, ...]
    shares: dict[str, dict[str, float]]

    def share(self, user_continent: str, infra_continent: str) -> float:
        """Dependence share for one (row, column) cell."""
        return self.shares.get(user_continent, {}).get(infra_continent, 0.0)

    def row(self, user_continent: str) -> dict[str, float]:
        """One row of the matrix as a dict."""
        return dict(self.shares.get(user_continent, {}))

    def dominant(self, user_continent: str) -> str:
        """Column with the largest share in a row."""
        row = self.shares[user_continent]
        return max(row, key=lambda col: (row[col], col))


def _continent_of_country(country: str | None) -> str | None:
    if country is None:
        return None
    entry = COUNTRIES.get(country)
    if entry is not None:
        return entry.continent
    # Providers HQ'd outside the dataset (e.g. China) still map by hand.
    return {"CN": "AS"}.get(country)


def _matrix_from_counts(
    counts: dict[str, Counter[str]],
) -> DependenceMatrix:
    shares: dict[str, dict[str, float]] = {}
    columns: set[str] = set()
    for row, counter in counts.items():
        total = sum(counter.values())
        shares[row] = (
            {col: n / total for col, n in counter.items()} if total else {}
        )
        columns.update(shares[row])
    rows = tuple(c for c in CONTINENTS if c in shares) + tuple(
        sorted(set(shares) - set(CONTINENTS))
    )
    ordered_cols = tuple(c for c in CONTINENTS if c in columns) + tuple(
        sorted(columns - set(CONTINENTS))
    )
    return DependenceMatrix(rows=rows, columns=ordered_cols, shares=shares)


def provider_hq_matrix(
    dataset: MeasurementDataset, layer: str = "hosting"
) -> DependenceMatrix:
    """Figure 8a: dependence by provider-headquarters continent."""
    if layer not in ("hosting", "dns"):
        raise UnknownLayerError(
            f"provider HQ matrix applies to hosting/dns, not {layer!r}"
        )
    field = "hosting_org_country" if layer == "hosting" else "dns_org_country"
    counts: dict[str, Counter[str]] = {}
    for cc in dataset.countries:
        row = COUNTRIES[cc].continent
        counter = counts.setdefault(row, Counter())
        for record in dataset.records(cc):
            target = _continent_of_country(getattr(record, field))
            counter[target or "??"] += 1
    return _matrix_from_counts(counts)


def ip_geolocation_matrix(dataset: MeasurementDataset) -> DependenceMatrix:
    """Figure 8b: dependence by serving-IP geolocation continent.

    Anycast addresses are reported in their own column since their
    geolocation is not meaningful.
    """
    counts: dict[str, Counter[str]] = {}
    for cc in dataset.countries:
        row = COUNTRIES[cc].continent
        counter = counts.setdefault(row, Counter())
        for record in dataset.records(cc):
            if record.ip is None:
                counter["??"] += 1
            elif record.ip_anycast:
                counter["anycast"] += 1
            else:
                counter[record.ip_continent or "??"] += 1
    return _matrix_from_counts(counts)


def ns_geolocation_matrix(dataset: MeasurementDataset) -> DependenceMatrix:
    """Figure 8c: dependence by nameserver geolocation continent."""
    counts: dict[str, Counter[str]] = {}
    for cc in dataset.countries:
        row = COUNTRIES[cc].continent
        counter = counts.setdefault(row, Counter())
        for record in dataset.records(cc):
            if record.dns_org is None:
                counter["??"] += 1
            elif record.ns_anycast:
                counter["anycast"] += 1
            else:
                counter[record.ns_continent or "??"] += 1
    return _matrix_from_counts(counts)


def anycast_share(dataset: MeasurementDataset, where: str) -> float:
    """Fraction of sites whose serving (``where='ip'``) or nameserver
    (``where='ns'``) address is anycast."""
    if where not in ("ip", "ns"):
        raise ValueError(f"where must be 'ip' or 'ns', got {where!r}")
    total = 0
    flagged = 0
    for cc in dataset.countries:
        for record in dataset.records(cc):
            if record.ip is None:
                continue
            total += 1
            if where == "ip" and record.ip_anycast:
                flagged += 1
            if where == "ns" and record.ns_anycast:
                flagged += 1
    return flagged / total if total else 0.0


def layer_insularity_cdf(
    analysis: LayerAnalysis, points: int = 101
) -> tuple[list[float], list[float]]:
    """CDF of per-country insularity for one layer (Figure 11)."""
    values = sorted(analysis.insularity.values())
    if not values:
        return [], []
    xs: list[float] = []
    ys: list[float] = []
    n = len(values)
    for i in range(points):
        x = i / (points - 1)
        xs.append(x)
        ys.append(sum(1 for v in values if v <= x) / n)
    return xs, ys
