"""Study orchestration: world → pipeline → per-layer analyses.

:class:`DependenceStudy` bundles one complete reproduction run — a
calibrated world, its Stanford-vantage measurement, and lazily built
:class:`~repro.analysis.layers.LayerAnalysis` objects for each
infrastructure layer.  ``DependenceStudy.run`` memoizes by configuration
so the many benchmark files share a single build.
"""

from __future__ import annotations

from functools import cached_property

from ..core.centralization import centralization_score
from ..core.distributions import ProviderDistribution
from ..datasets.paper_scores import LAYERS, PAPER_SCORES
from ..errors import UnknownLayerError
from ..pipeline.measure import MeasurementPipeline
from ..pipeline.records import MeasurementDataset
from ..worldgen.config import WorldConfig
from ..worldgen.world import World
from .layers import LayerAnalysis

__all__ = ["DependenceStudy"]

_CACHE: dict[WorldConfig, "DependenceStudy"] = {}


class DependenceStudy:
    """One full measurement study over a synthetic world."""

    def __init__(self, world: World, dataset: MeasurementDataset) -> None:
        self.world = world
        self.dataset = dataset
        self._layers: dict[str, LayerAnalysis] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, config: WorldConfig | None = None) -> "DependenceStudy":
        """Build a world and measure it (uncached)."""
        world = World(config)
        dataset = MeasurementPipeline(world).run()
        return cls(world, dataset)

    @classmethod
    def run(cls, config: WorldConfig | None = None) -> "DependenceStudy":
        """Build-and-measure with process-wide memoization."""
        config = config or WorldConfig()
        study = _CACHE.get(config)
        if study is None:
            study = cls.build(config)
            _CACHE[config] = study
        return study

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def countries(self) -> list[str]:
        """Country codes covered, sorted."""
        return self.dataset.countries

    def layer(self, name: str) -> LayerAnalysis:
        """The LayerAnalysis for one layer (built lazily)."""
        if name not in LAYERS:
            raise UnknownLayerError(
                f"unknown layer {name!r}; expected one of {LAYERS}"
            )
        analysis = self._layers.get(name)
        if analysis is None:
            analysis = LayerAnalysis(self.dataset, name)
            self._layers[name] = analysis
        return analysis

    @property
    def hosting(self) -> LayerAnalysis:
        """Hosting-layer analysis."""
        return self.layer("hosting")

    @property
    def dns(self) -> LayerAnalysis:
        """DNS-layer analysis."""
        return self.layer("dns")

    @property
    def ca(self) -> LayerAnalysis:
        """CA-layer analysis."""
        return self.layer("ca")

    @property
    def tld(self) -> LayerAnalysis:
        """TLD-layer analysis."""
        return self.layer("tld")

    # ------------------------------------------------------------------
    # Cross-layer conveniences
    # ------------------------------------------------------------------

    def paper_comparison(self, layer: str) -> list[tuple[str, float, float]]:
        """(country, measured S, published S) rows for one layer."""
        analysis = self.layer(layer)
        published = PAPER_SCORES[layer]
        return [
            (cc, analysis.scores[cc], published[cc])
            for cc in self.countries
        ]

    @cached_property
    def global_top_distribution(self) -> dict[str, ProviderDistribution]:
        """Per-layer distributions of the Global Top-C list (Figure 12's
        vertical marker)."""
        c = self.world.config.sites_per_country
        domains = self.world.global_pool_domains[:c]
        out: dict[str, ProviderDistribution] = {}
        for layer in LAYERS:
            out[layer] = ProviderDistribution.from_assignments(
                getattr(self.world.sites[d], layer) for d in domains
            )
        return out

    def global_top_score(self, layer: str) -> float:
        """Centralization Score of the Global Top-C list."""
        return centralization_score(self.global_top_distribution[layer])

    def score_histogram(
        self, layer: str, bin_width: float = 0.025, max_score: float = 0.65
    ) -> tuple[list[float], list[int]]:
        """Histogram of per-country S for one layer (Figure 12)."""
        edges = []
        value = 0.0
        while value < max_score:
            edges.append(round(value, 6))
            value += bin_width
        counts = [0] * len(edges)
        for score in self.layer(layer).scores.values():
            index = min(int(score / bin_width), len(edges) - 1)
            counts[index] += 1
        return edges, counts
