"""Campaign reports: summarizing one measurement run's telemetry.

Operators of real §3.4-scale campaigns live off exactly four
questions — where did the time go, which infrastructure keeps
failing, how healthy are the caches, and how much did resilience
machinery (retries, breakers) have to work?  This module answers them
from the artifacts an instrumented run leaves behind: the metrics JSON
written by :class:`~repro.obs.metrics.MetricsRegistry` and, optionally,
the span trace JSONL written by :class:`~repro.obs.spans.Tracer`.

The renderer is pure (dict in, text out), so reports can be rebuilt
from archived artifacts long after the run — the CLI's
``repro report-campaign`` is a two-line wrapper over
:func:`render_campaign_report`.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from ..errors import PipelineError

__all__ = ["load_metrics", "render_campaign_report"]


def load_metrics(path: str | Path) -> dict:
    """Load a metrics JSON export (as written by ``--metrics-out``)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise PipelineError(f"cannot load metrics from {path}: {exc}") from exc
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise PipelineError(
            f"{path} is not a metrics export (missing 'metrics' key)"
        )
    return payload


def _samples(metrics: dict, name: str) -> list[tuple[dict, object]]:
    entry = metrics.get("metrics", {}).get(name)
    if entry is None:
        return []
    out = []
    for sample in entry.get("samples", ()):
        out.append((sample.get("labels", {}), sample))
    return out


def _value_total(metrics: dict, name: str, **match: str) -> float:
    total = 0.0
    for labels, sample in _samples(metrics, name):
        if all(labels.get(k) == v for k, v in match.items()):
            total += float(sample.get("value", 0))
    return total


def _fmt_count(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


def _overview_lines(metrics: dict) -> list[str]:
    ok = _value_total(metrics, "repro_rows_total", status="ok")
    failed = _value_total(metrics, "repro_rows_total", status="failed")
    total = ok + failed
    degraded = _value_total(metrics, "repro_degraded_rows_total")
    attempts = _value_total(metrics, "repro_attempts_total")
    retries = _value_total(metrics, "repro_retries_total")
    backoff = _value_total(metrics, "repro_backoff_seconds_total")
    lines = [
        f"rows:      {_fmt_count(total)} total, {_fmt_count(ok)} ok, "
        f"{_fmt_count(failed)} failed, {_fmt_count(degraded)} degraded",
        f"attempts:  {_fmt_count(attempts)} "
        f"({_fmt_count(retries)} retries, {backoff:.1f}s logical backoff)",
    ]
    injected = _samples(metrics, "repro_faults_injected")
    if injected:
        detail = ", ".join(
            f"{labels.get('injector')}={_fmt_count(float(s['value']))}"
            for labels, s in injected
        )
        lines.append(f"faults:    {detail}")
    return lines


def _cache_lines(metrics: dict) -> list[str]:
    queries = _value_total(metrics, "repro_dns_queries_total")
    pos = _value_total(metrics, "repro_dns_cache_hits_total", kind="positive")
    neg = _value_total(metrics, "repro_dns_cache_hits_total", kind="negative")
    uncached = _value_total(metrics, "repro_dns_uncached_total")
    ratio = 100.0 * (pos + neg) / queries if queries else 0.0
    lines = [
        f"dns:       {_fmt_count(queries)} queries, "
        f"{_fmt_count(pos)} cache hits + {_fmt_count(neg)} negative, "
        f"{_fmt_count(uncached)} uncached  (hit ratio {ratio:.1f}%)",
    ]
    ns_hit = _value_total(
        metrics, "repro_ns_cache_events_total", event="hit"
    )
    ns_neg = _value_total(
        metrics, "repro_ns_cache_events_total", event="negative_hit"
    )
    ns_miss = _value_total(
        metrics, "repro_ns_cache_events_total", event="miss"
    )
    ns_total = ns_hit + ns_neg + ns_miss
    if ns_total:
        ns_ratio = 100.0 * (ns_hit + ns_neg) / ns_total
        lines.append(
            f"ns-label:  {_fmt_count(ns_hit)} hits + "
            f"{_fmt_count(ns_neg)} negative, {_fmt_count(ns_miss)} "
            f"misses  (hit ratio {ns_ratio:.1f}%)"
        )
    return lines


def _stage_lines(metrics: dict, spans: list[dict] | None) -> list[str]:
    lines: list[str] = []
    entry = metrics.get("metrics", {}).get("repro_stage_logical_seconds")
    if entry is not None and entry.get("samples"):
        rows = []
        for sample in entry["samples"]:
            stage = sample.get("labels", {}).get("stage", "?")
            total = float(sample.get("sum", 0.0))
            count = int(sample.get("count", 0))
            mean = total / count if count else 0.0
            rows.append((total, stage, count, mean))
        rows.sort(key=lambda r: (-r[0], r[1]))
        lines.append("slowest stages (logical clock):")
        for total, stage, count, mean in rows:
            lines.append(
                f"  {stage:<8} {total:>9.2f}s total  "
                f"{count:>6} spans  {mean * 1000.0:>8.2f}ms mean"
            )
    if spans:
        by_stage: dict[str, list[float]] = defaultdict(list)
        for span in spans:
            by_stage[span.get("name", "?")].append(
                float(span.get("wall_ms", 0.0))
            )
        rows_w = sorted(
            (
                (sum(values), stage, len(values), max(values))
                for stage, values in by_stage.items()
            ),
            key=lambda r: (-r[0], r[1]),
        )
        lines.append("slowest stages (wall clock, from trace):")
        for total, stage, count, worst in rows_w:
            lines.append(
                f"  {stage:<8} {total:>9.2f}ms total  "
                f"{count:>6} spans  {worst:>8.2f}ms worst"
            )
    return lines


def _nameserver_lines(metrics: dict, top: int) -> list[str]:
    per_ns: dict[str, dict[str, float]] = defaultdict(dict)
    for labels, sample in _samples(metrics, "repro_ns_failures_total"):
        ns = labels.get("ns", "?")
        cls = labels.get("failure_class", "?")
        per_ns[ns][cls] = per_ns[ns].get(cls, 0.0) + float(
            sample.get("value", 0)
        )
    if not per_ns:
        return []
    ranked = sorted(
        per_ns.items(), key=lambda kv: (-sum(kv[1].values()), kv[0])
    )[:top]
    lines = [f"top failing nameservers (of {len(per_ns)}):"]
    for ns, classes in ranked:
        detail = ", ".join(
            f"{cls}={_fmt_count(n)}"
            for cls, n in sorted(
                classes.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        lines.append(
            f"  {ns:<28} {_fmt_count(sum(classes.values())):>5}  ({detail})"
        )
    skips = _value_total(metrics, "repro_breaker_skips_total")
    if skips:
        lines.append(f"  breaker skips: {_fmt_count(skips)}")
    return lines


def _breaker_lines(metrics: dict) -> list[str]:
    transitions = _samples(metrics, "repro_breaker_transitions_total")
    if not transitions:
        return []
    detail = ", ".join(
        f"{labels.get('from_state')}→{labels.get('to_state')}"
        f"={_fmt_count(float(s['value']))}"
        for labels, s in transitions
    )
    lines = [f"breaker:   {detail}"]
    open_now = _value_total(metrics, "repro_breaker_open_circuits")
    if open_now:
        lines.append(
            f"           {_fmt_count(open_now)} circuits still "
            f"open/half-open at end of run"
        )
    return lines


def _failure_lines(metrics: dict, top: int) -> list[str]:
    cells: dict[tuple[str, str], dict[str, float]] = defaultdict(dict)
    for labels, sample in _samples(metrics, "repro_failures_total"):
        key = (
            labels.get("failure_class", "?"),
            labels.get("layer", "?"),
        )
        country = labels.get("country", "?")
        cells[key][country] = cells[key].get(country, 0.0) + float(
            sample.get("value", 0)
        )
    if not cells:
        return ["no failures recorded"]
    lines = [
        f"{'class':<14} {'layer':<6} {'count':>7}  top countries"
    ]
    for cls, layer in sorted(cells):
        per_country = cells[(cls, layer)]
        total = sum(per_country.values())
        worst = sorted(
            per_country.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]
        detail = ", ".join(
            f"{cc}={_fmt_count(n)}" for cc, n in worst
        )
        lines.append(
            f"{cls:<14} {layer:<6} {_fmt_count(total):>7}  {detail}"
        )
    return lines


def _store_lines(store_metrics: dict) -> list[str]:
    """Summarize the campaign-store hit/miss/skip accounting."""
    hits = _value_total(store_metrics, "repro_store_shard_hits_total")
    misses = _value_total(store_metrics, "repro_store_shard_misses_total")
    skipped = _value_total(
        store_metrics, "repro_store_resume_skipped_total"
    )
    lines = [
        f"   shard hits:       {_fmt_count(hits)}",
        f"   shard misses:     {_fmt_count(misses)}",
        f"   resume skipped:   {_fmt_count(skipped)}",
    ]
    hit_countries = sorted(
        labels["country"]
        for labels, _ in _samples(
            store_metrics, "repro_store_shard_hits_total"
        )
    )
    miss_countries = sorted(
        labels["country"]
        for labels, _ in _samples(
            store_metrics, "repro_store_shard_misses_total"
        )
    )
    if hit_countries:
        lines.append(f"   reused: {' '.join(hit_countries)}")
    if miss_countries:
        lines.append(f"   measured: {' '.join(miss_countries)}")
    return lines


def _supervisor_lines(store_metrics: dict) -> list[str]:
    """Summarize supervision events (retries, timeouts, quarantine).

    The supervisor's registry is merged into the per-campaign store
    artifact only when events actually occurred, so this section
    appears exactly when a run needed supervision.
    """
    retries = _value_total(store_metrics, "repro_shard_retries_total")
    timeouts = _value_total(store_metrics, "repro_shard_timeouts_total")
    quarantined = _value_total(
        store_metrics, "repro_countries_quarantined_total"
    )
    if not (retries or timeouts or quarantined):
        return []
    lines = [
        f"   shard retries:    {_fmt_count(retries)}",
        f"   shard timeouts:   {_fmt_count(timeouts)}",
        f"   quarantined:      {_fmt_count(quarantined)}",
    ]
    by_reason: dict[str, float] = defaultdict(float)
    for labels, sample in _samples(
        store_metrics, "repro_shard_retries_total"
    ):
        by_reason[labels.get("reason", "?")] += float(
            sample.get("value", 0)
        )
    if by_reason:
        detail = ", ".join(
            f"{reason}={_fmt_count(n)}"
            for reason, n in sorted(
                by_reason.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        lines.append(f"   retry reasons:    {detail}")
    tombstoned = sorted(
        labels["country"]
        for labels, _ in _samples(
            store_metrics, "repro_countries_quarantined_total"
        )
    )
    if tombstoned:
        lines.append(
            f"   quarantined countries: {' '.join(tombstoned)} "
            f"(a --resume run re-measures them)"
        )
    return lines


def render_campaign_report(
    metrics: dict,
    spans: list[dict] | None = None,
    top: int = 5,
    store_metrics: dict | None = None,
) -> str:
    """Render the operator-facing summary of one campaign run.

    ``metrics`` is a loaded metrics export (:func:`load_metrics`);
    ``spans`` an optional loaded trace
    (:func:`repro.obs.spans.load_trace`) that adds wall-clock stage
    timings.  ``top`` bounds the nameserver and country rankings.
    ``store_metrics`` is the per-campaign store-telemetry artifact
    (kept out of the measurement metrics so resumed runs stay
    byte-identical); when given, a campaign-store section reports
    shard reuse.
    """
    sections: list[tuple[str, list[str]]] = [
        ("overview", _overview_lines(metrics)),
        ("cache efficiency", _cache_lines(metrics)),
        ("stage timings", _stage_lines(metrics, spans)),
        ("failing infrastructure", _nameserver_lines(metrics, top)),
        ("resilience", _breaker_lines(metrics)),
        ("failures by class × layer", _failure_lines(metrics, top)),
    ]
    if store_metrics is not None:
        sections.append(("campaign store", _store_lines(store_metrics)))
        sections.append(("supervision", _supervisor_lines(store_metrics)))
    out: list[str] = ["campaign report", "==============="]
    for title, lines in sections:
        if not lines:
            continue
        out.append("")
        out.append(f"-- {title}")
        out.extend(lines)
    return "\n".join(out)
