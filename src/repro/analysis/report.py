"""Human-readable text reports over a study (used by the examples)."""

from __future__ import annotations

from io import StringIO

from ..core.centralization import interpret_score
from ..datasets.countries import COUNTRIES
from ..datasets.paper_scores import LAYERS, PAPER_SCORES
from .study import DependenceStudy

__all__ = ["country_report", "layer_summary", "comparison_table"]


def country_report(study: DependenceStudy, cc: str) -> str:
    """A dependence profile of one country across all four layers."""
    info = COUNTRIES[cc]
    out = StringIO()
    out.write(f"{info.name} ({cc}) — {info.subregion}, {info.continent}\n")
    out.write("=" * 60 + "\n")
    for layer in LAYERS:
        analysis = study.layer(layer)
        score = analysis.scores[cc]
        band = interpret_score(score).value
        dist = analysis.distribution(cc)
        top_name, top_count = dist.ranked()[0]
        out.write(
            f"\n[{layer}] S = {score:.4f} ({band}); "
            f"paper: {PAPER_SCORES[layer][cc]:.4f}\n"
        )
        out.write(
            f"  providers: {dist.n_providers}; "
            f"top: {top_name} ({100 * top_count / dist.total:.1f}%); "
            f"top-5 share: {100 * dist.top_n_share(5):.1f}%\n"
        )
        out.write(
            f"  insularity: {100 * analysis.insularity[cc]:.1f}%\n"
        )
        deps = sorted(
            analysis.country_dependencies(cc).items(),
            key=lambda kv: -kv[1],
        )[:3]
        if layer != "tld":
            described = ", ".join(
                f"{home}: {100 * share:.1f}%" for home, share in deps
            )
            out.write(f"  top serving countries: {described}\n")
    return out.getvalue()


def layer_summary(study: DependenceStudy, layer: str) -> str:
    """Most/least centralized countries and layer-wide statistics."""
    analysis = study.layer(layer)
    ranking = analysis.ranking
    scores = [s for _, s in ranking]
    mean = sum(scores) / len(scores)
    var = sum((s - mean) ** 2 for s in scores) / len(scores)
    out = StringIO()
    out.write(f"Layer: {layer}  (countries: {len(ranking)})\n")
    out.write(f"mean S = {mean:.4f}, var = {var:.4f}\n")
    out.write("most centralized:  ")
    out.write(
        ", ".join(f"{cc} ({s:.4f})" for cc, s in ranking[:5]) + "\n"
    )
    out.write("least centralized: ")
    out.write(
        ", ".join(f"{cc} ({s:.4f})" for cc, s in ranking[-5:]) + "\n"
    )
    return out.getvalue()


def comparison_table(
    study: DependenceStudy, layer: str, limit: int | None = None
) -> str:
    """Paper-vs-measured table for one layer (EXPERIMENTS.md rows)."""
    rows = study.paper_comparison(layer)
    rows.sort(key=lambda row: -row[2])
    if limit is not None:
        rows = rows[:limit]
    out = StringIO()
    out.write(f"{'country':8s} {'measured':>9s} {'paper':>9s} {'diff':>8s}\n")
    for cc, measured, paper in rows:
        out.write(
            f"{cc:8s} {measured:9.4f} {paper:9.4f} "
            f"{measured - paper:+8.4f}\n"
        )
    return out.getvalue()
