"""What-if resilience scenarios (the paper's Discussion section).

Section 8 argues researchers should study how availability would be
impacted "not only by a provider outage, but also by a geopolitical
schism between two countries".  This module implements both scenarios
over a measured dataset:

* :func:`provider_outage` — a provider disappears (the Dyn/Cloudflare
  incident class): per-country fraction of sites affected, and the
  counterfactual centralization of the surviving web.
* :func:`country_schism` — one country blocks/loses connectivity to
  providers based in another (the sanctions class): per-country
  exposure through any layer.

Both are counterfactual re-aggregations of measurement records — no
re-measurement is required.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.centralization import centralization_score
from ..core.distributions import ProviderDistribution
from ..errors import EmptyDistributionError, UnknownLayerError
from ..pipeline.records import LAYER_FIELDS, MeasurementDataset

__all__ = [
    "OutageImpact",
    "SchismImpact",
    "provider_outage",
    "country_schism",
    "single_points_of_failure",
]


@dataclass(frozen=True, slots=True)
class OutageImpact:
    """Consequences of one provider's outage."""

    provider: str
    layer: str
    #: country -> fraction of its measured sites that break.
    affected_share: dict[str, float]
    #: country -> S of the surviving distribution (None if everything
    #: in the country depended on the provider).
    surviving_score: dict[str, float | None]

    @property
    def worst_hit(self) -> tuple[str, float]:
        """(country, affected share) of the hardest-hit country."""
        cc = max(
            self.affected_share,
            key=lambda c: (self.affected_share[c], c),
        )
        return cc, self.affected_share[cc]

    def global_affected_share(self) -> float:
        """Mean affected share across countries."""
        values = self.affected_share.values()
        return sum(values) / len(values) if values else 0.0


def provider_outage(
    dataset: MeasurementDataset, provider: str, layer: str = "hosting"
) -> OutageImpact:
    """Simulate a provider disappearing at one layer."""
    if layer not in LAYER_FIELDS:
        raise UnknownLayerError(f"unknown layer {layer!r}")
    affected: dict[str, float] = {}
    surviving: dict[str, float | None] = {}
    for cc in dataset.countries:
        labels = [
            label
            for label in dataset.layer_labels(cc, layer)
            if label is not None
        ]
        if not labels:
            affected[cc] = 0.0
            surviving[cc] = None
            continue
        hit = sum(1 for label in labels if label == provider)
        affected[cc] = hit / len(labels)
        rest = [label for label in labels if label != provider]
        if rest:
            surviving[cc] = centralization_score(
                ProviderDistribution.from_assignments(rest)
            )
        else:
            surviving[cc] = None
    return OutageImpact(
        provider=provider,
        layer=layer,
        affected_share=affected,
        surviving_score=surviving,
    )


@dataclass(frozen=True, slots=True)
class SchismImpact:
    """Consequences of a country losing access to another's providers."""

    blocked_country: str
    #: layer -> country -> fraction of sites depending on the blocked
    #: country's infrastructure at that layer.
    exposure: dict[str, dict[str, float]]

    def any_layer_exposure(self, cc: str) -> float:
        """The worst single-layer exposure for one country."""
        return max(
            (layers.get(cc, 0.0) for layers in self.exposure.values()),
            default=0.0,
        )

    def most_exposed(self, layer: str, top: int = 5) -> list[tuple[str, float]]:
        """Most-exposed countries at one layer."""
        table = self.exposure[layer]
        return sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))[:top]


def country_schism(
    dataset: MeasurementDataset,
    blocked_country: str,
    layers: tuple[str, ...] = ("hosting", "dns", "ca"),
) -> SchismImpact:
    """Fraction of every country's web that a schism would sever.

    ``blocked_country`` is the home of the now-unreachable providers;
    countries' own dependence on themselves is reported too (a schism
    with yourself is an odd but well-defined query).
    """
    exposure: dict[str, dict[str, float]] = {}
    for layer in layers:
        if layer not in LAYER_FIELDS or layer == "tld":
            raise UnknownLayerError(
                f"schism analysis needs a provider layer, got {layer!r}"
            )
        field, country_field = LAYER_FIELDS[layer]
        assert country_field is not None
        per_country: dict[str, float] = {}
        for cc in dataset.countries:
            records = [r for r in dataset.records(cc) if r.ok]
            if not records:
                per_country[cc] = 0.0
                continue
            hit = sum(
                1
                for r in records
                if getattr(r, country_field) == blocked_country
            )
            per_country[cc] = hit / len(records)
        exposure[layer] = per_country
    return SchismImpact(blocked_country=blocked_country, exposure=exposure)


def single_points_of_failure(
    dataset: MeasurementDataset,
    layer: str = "hosting",
    threshold: float = 0.25,
) -> dict[str, list[tuple[str, float]]]:
    """Providers whose outage would break > ``threshold`` of a country.

    Returns ``country -> [(provider, share), ...]`` for every country
    that has at least one such provider — the Kashaf-style single
    point of failure inventory the related work measures.
    """
    if not 0.0 < threshold <= 1.0:
        raise EmptyDistributionError(
            f"threshold must be in (0, 1], got {threshold}"
        )
    out: dict[str, list[tuple[str, float]]] = {}
    for cc in dataset.countries:
        dist = dataset.distribution(cc, layer)
        heavy = [
            (name, count / dist.total)
            for name, count in dist.ranked()
            if count / dist.total > threshold
        ]
        if heavy:
            out[cc] = heavy
    return out
