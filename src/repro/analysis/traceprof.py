"""Trace profiling: turning a campaign trace into perf numbers.

The campaign trace written by ``repro measure --trace-out`` holds two
layers in one JSONL file: per-site *pipeline* spans (logical-clock
stage timings: site/http/resolve/label/ns-walk/tls/enrich) and, when
the run was profiled, campaign *lifecycle* spans
(:data:`~repro.obs.profile.PROFILE_SPAN_NAMES`: worker spawn, World
build, queue wait, dispatch round-trips, compute, backoff, merge —
wall-clock, campaign-relative).  This module reads that file back into
the three artifacts the "make parallelism pay" roadmap item needs:

* **worker timelines** — per-worker busy/idle/spawn seconds and the
  task segments behind them, so "0.87x speedup at 4 workers" becomes
  "each worker was idle 60% of the campaign";
* **the critical path** — the single chain of spans that bounds the
  campaign's wall clock, extracted by walking back from the campaign
  end and descending into whichever child span ends latest; the
  resulting segments partition the campaign exactly, so their
  per-phase sums equal the measured wall clock by construction;
* **an empirical Amdahl decomposition** — a concurrency sweep over
  the work intervals (compute + World build): time with >= 2 overlapping
  work spans is the parallel section, the rest of the campaign is
  serial, and ``1 / (s + p/N)`` bounds any speedup more workers could
  buy.

Everything degrades gracefully on a trace with no lifecycle spans
(an unsharded or pre-profiling trace): the pipeline-stage aggregation
still works and the profile-only sections report as absent.

:func:`chrome_trace` exports the same spans as Chrome ``trace_event``
JSON (Perfetto-loadable): one process group for the campaign's wall
clock (a track per worker) and one for the pipeline's logical clock
(a track per country).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.profile import PROFILE_SPAN_NAMES

__all__ = [
    "TraceProfile",
    "analyze_trace",
    "critical_path",
    "amdahl_decomposition",
    "worker_timelines",
    "chrome_trace",
    "render_trace_summary",
    "render_critical_path",
]

#: Slack for float comparisons between span bounds: trace timestamps
#: are rounded to microseconds on export, so a child may overhang its
#: parent by up to 1e-6 s.
_EPS = 2e-6


def _end(span: dict) -> float:
    return span["start_logical"] + span["logical_seconds"]


def _split(spans: list[dict]) -> tuple[list[dict], list[dict]]:
    """``(pipeline spans, lifecycle spans)`` of one loaded trace."""
    pipeline: list[dict] = []
    profile: list[dict] = []
    for span in spans:
        (profile if span["name"] in PROFILE_SPAN_NAMES else pipeline).append(
            span
        )
    return pipeline, profile


def _campaign_root(profile: list[dict]) -> dict | None:
    for span in profile:
        if span["name"] == "campaign":
            return span
    return None


def worker_timelines(spans: list[dict]) -> dict[str, dict]:
    """Per-worker utilization: busy/idle/spawn seconds and segments.

    Returns ``{worker label: {"busy", "idle", "spawn", "world_build",
    "tasks", "busy_frac", "idle_frac", "segments"}}`` where
    ``segments`` is the worker's task intervals as ``(start, end,
    country)`` tuples in start order.  Busy time follows the
    profiler's accounting: a worker is busy while it holds a
    dispatched country (round-trip, IPC included); the serial path's
    inline computes, the parent World build, and the merge count as
    the ``main`` track's busy time.  Idle is everything else between
    spawn and campaign end, so ``spawn + busy + idle`` equals the
    campaign wall clock for every worker.  Empty when the trace has
    no lifecycle spans.
    """
    _pipeline, profile = _split(spans)
    root = _campaign_root(profile)
    if root is None:
        return {}
    wall = root["logical_seconds"]
    root_id = root["span_id"]
    workers: dict[str, dict] = {}

    def track(label: str) -> dict:
        return workers.setdefault(
            label,
            {
                "busy": 0.0,
                "idle": 0.0,
                "spawn": 0.0,
                "world_build": 0.0,
                "tasks": 0,
                "busy_frac": 0.0,
                "idle_frac": 0.0,
                "segments": [],
            },
        )

    for span in profile:
        name = span["name"]
        seconds = span["logical_seconds"]
        label = span["attrs"].get("worker")
        if name == "dispatch":
            entry = track(label)
            entry["busy"] += seconds
            entry["tasks"] += 1
            entry["segments"].append(
                (
                    span["start_logical"],
                    _end(span),
                    span["attrs"].get("country", "?"),
                )
            )
        elif name == "compute" and span["parent_id"] == root_id:
            entry = track(label)
            entry["busy"] += seconds
            entry["tasks"] += 1
            entry["segments"].append(
                (
                    span["start_logical"],
                    _end(span),
                    span["attrs"].get("country", "?"),
                )
            )
        elif name == "worker-spawn":
            track(label)["spawn"] += seconds
        elif name == "world-build":
            entry = track(label)
            entry["world_build"] += seconds
            if span["parent_id"] == root_id and label == "main":
                entry["busy"] += seconds
        elif name == "merge":
            track("main")["busy"] += seconds
    for entry in workers.values():
        entry["idle"] = max(wall - entry["spawn"] - entry["busy"], 0.0)
        if wall > 0:
            entry["busy_frac"] = entry["busy"] / wall
            entry["idle_frac"] = entry["idle"] / wall
        entry["segments"].sort()
    return workers


def critical_path(spans: list[dict]) -> list[dict]:
    """The chain of spans bounding the campaign's wall clock.

    Walks backward from the campaign root's end: at each cursor the
    latest-ending lifecycle child still at or before the cursor is
    the span the campaign was waiting on; the walk descends into it,
    and any gap between children is attributed to the parent
    (coordination/IPC at the dispatch level, scheduler idle at the
    campaign level).  The returned segments — ``{"name", "start",
    "seconds", "attrs"}`` in start order — partition the campaign
    interval exactly, so summing ``seconds`` by ``name`` reproduces
    the measured wall clock.  Empty when the trace has no lifecycle
    spans.
    """
    _pipeline, profile = _split(spans)
    root = _campaign_root(profile)
    if root is None:
        return []
    children: dict[int, list[dict]] = {}
    for span in profile:
        if span["parent_id"] is not None:
            children.setdefault(span["parent_id"], []).append(span)
    segments: list[tuple[float, float, dict]] = []

    def walk(span: dict, lo: float, hi: float) -> None:
        cursor = hi
        # Children sorted by end; the index walks down as the cursor
        # recedes, so every child is considered at most once — which
        # both bounds the walk at O(n) per parent and guarantees
        # termination when zero-duration children sit exactly at the
        # cursor.
        kids = sorted(children.get(span["span_id"], ()), key=_end)
        index = len(kids) - 1
        while cursor > lo + _EPS:
            while index >= 0 and _end(kids[index]) > cursor + _EPS:
                index -= 1
            if index < 0 or min(_end(kids[index]), cursor) <= lo + _EPS:
                segments.append((lo, cursor, span))
                return
            best = kids[index]
            index -= 1
            best_end = min(_end(best), cursor)
            if cursor > best_end + _EPS:
                segments.append((best_end, cursor, span))
            best_start = max(best["start_logical"], lo)
            walk(best, best_start, best_end)
            cursor = best_start

    walk(root, root["start_logical"], _end(root))
    segments.sort(key=lambda seg: seg[0])
    return [
        {
            "name": span["name"],
            "start": round(start, 6),
            "seconds": round(stop - start, 6),
            "attrs": span["attrs"],
        }
        for start, stop, span in segments
        if stop - start > 0
    ]


def amdahl_decomposition(
    spans: list[dict], worker_counts: tuple[int, ...] = (2, 4, 8, 16)
) -> dict | None:
    """Empirical serial/parallel split plus speedup bounds.

    Sweeps the work intervals (``compute`` and ``world-build``
    lifecycle spans) counting how many overlap at each instant: the
    campaign time covered by >= 2 concurrent work spans is the
    *parallel section*, everything else (single-threaded work, IPC,
    spawn, merge, idle) is the *serial section*.  With serial
    fraction ``s``, Amdahl's law caps any speedup at
    ``1 / (s + (1 - s) / N)`` — reported per requested worker count.
    None when the trace has no lifecycle spans or zero wall clock.
    """
    _pipeline, profile = _split(spans)
    root = _campaign_root(profile)
    if root is None:
        return None
    wall = root["logical_seconds"]
    if wall <= 0:
        return None
    events: list[tuple[float, int]] = []
    for span in profile:
        if span["name"] in ("compute", "world-build"):
            events.append((span["start_logical"], 1))
            events.append((_end(span), -1))
    events.sort()
    parallel = 0.0
    depth = 0
    previous = root["start_logical"]
    for at, delta in events:
        if depth >= 2:
            parallel += at - previous
        previous = at
        depth += delta
    parallel = min(parallel, wall)
    serial_fraction = max(1.0 - parallel / wall, 0.0)
    return {
        "wall_seconds": round(wall, 6),
        "serial_seconds": round(wall - parallel, 6),
        "parallel_seconds": round(parallel, 6),
        "serial_fraction": round(serial_fraction, 4),
        "speedup_bounds": {
            str(n): round(
                1.0 / (serial_fraction + (1.0 - serial_fraction) / n), 2
            )
            for n in worker_counts
        },
    }


@dataclass(frozen=True)
class TraceProfile:
    """Everything :func:`analyze_trace` extracts from one trace."""

    #: Campaign wall clock (0 when the trace has no lifecycle spans).
    wall_seconds: float
    #: Whether the trace carried campaign lifecycle spans at all.
    has_profile: bool
    #: Per-worker utilization (:func:`worker_timelines`).
    workers: dict[str, dict] = field(default_factory=dict)
    #: Total seconds per lifecycle phase name (overlap-counting
    #: attribution, not a partition).
    phases: dict[str, float] = field(default_factory=dict)
    #: Critical-path segments (:func:`critical_path`).
    critical: list[dict] = field(default_factory=list)
    #: Critical-path seconds summed by phase name — a partition of
    #: ``wall_seconds``.
    critical_phases: dict[str, float] = field(default_factory=dict)
    #: Amdahl decomposition (:func:`amdahl_decomposition`) or None.
    amdahl: dict | None = None
    #: Logical-clock seconds per pipeline stage name.
    pipeline_stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Span counts.
    pipeline_span_count: int = 0
    profile_span_count: int = 0

    def to_dict(self) -> dict:
        """A JSON-ready rendering (the ``--json`` output)."""
        return {
            "wall_seconds": self.wall_seconds,
            "has_profile": self.has_profile,
            "workers": {
                label: {
                    key: value
                    for key, value in entry.items()
                    if key != "segments"
                }
                for label, entry in self.workers.items()
            },
            "phases": self.phases,
            "critical_path": self.critical,
            "critical_phases": self.critical_phases,
            "amdahl": self.amdahl,
            "pipeline_stage_seconds": self.pipeline_stage_seconds,
            "pipeline_span_count": self.pipeline_span_count,
            "profile_span_count": self.profile_span_count,
        }


def analyze_trace(spans: list[dict]) -> TraceProfile:
    """Profile one loaded trace (``load_trace`` output)."""
    pipeline, profile = _split(spans)
    root = _campaign_root(profile)
    stage_seconds: dict[str, float] = {}
    for span in pipeline:
        stage_seconds[span["name"]] = round(
            stage_seconds.get(span["name"], 0.0) + span["logical_seconds"],
            6,
        )
    phases: dict[str, float] = {}
    for span in profile:
        if span["name"] != "campaign":
            phases[span["name"]] = round(
                phases.get(span["name"], 0.0) + span["logical_seconds"], 6
            )
    critical = critical_path(spans)
    critical_phases: dict[str, float] = {}
    for segment in critical:
        critical_phases[segment["name"]] = round(
            critical_phases.get(segment["name"], 0.0) + segment["seconds"],
            6,
        )
    return TraceProfile(
        wall_seconds=root["logical_seconds"] if root is not None else 0.0,
        has_profile=root is not None,
        workers=worker_timelines(spans),
        phases=phases,
        critical=critical,
        critical_phases=critical_phases,
        amdahl=amdahl_decomposition(spans),
        pipeline_stage_seconds=stage_seconds,
        pipeline_span_count=len(pipeline),
        profile_span_count=len(profile),
    )


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------

#: Process ids in the Chrome export: one track group per clock domain.
_PID_CAMPAIGN = 1
_PID_PIPELINE = 2


def chrome_trace(spans: list[dict]) -> dict:
    """The trace as Chrome ``trace_event`` JSON (Perfetto-loadable).

    Two process groups: pid 1 is the campaign on the wall clock with
    one thread per worker (lifecycle spans), pid 2 is the pipeline on
    the logical clock with one thread per country (per-site stage
    spans).  All events are complete events (``ph: "X"``) with
    microsecond timestamps; ``M`` metadata events name the processes
    and threads.
    """
    pipeline, profile = _split(spans)
    by_id = {span["span_id"]: span for span in spans}

    def country_of(span: dict) -> str:
        walker: dict | None = span
        while walker is not None:
            country = walker["attrs"].get("country")
            if country is not None:
                return str(country)
            parent = walker["parent_id"]
            walker = by_id.get(parent) if parent is not None else None
        return "?"

    events: list[dict] = []
    threads: dict[tuple[int, str], int] = {}

    def tid(pid: int, label: str) -> int:
        key = (pid, label)
        if key not in threads:
            threads[key] = len(threads) + 1
        return threads[key]

    for span in profile:
        label = str(span["attrs"].get("worker", "main"))
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": round(span["start_logical"] * 1e6, 3),
                "dur": round(span["logical_seconds"] * 1e6, 3),
                "pid": _PID_CAMPAIGN,
                "tid": tid(_PID_CAMPAIGN, label),
                "args": {
                    str(k): v for k, v in span["attrs"].items()
                }
                | {"status": span["status"]},
            }
        )
    for span in pipeline:
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": round(span["start_logical"] * 1e6, 3),
                "dur": round(span["logical_seconds"] * 1e6, 3),
                "pid": _PID_PIPELINE,
                "tid": tid(_PID_PIPELINE, country_of(span)),
                "args": {
                    str(k): v for k, v in span["attrs"].items()
                }
                | {"status": span["status"]},
            }
        )
    metadata: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_CAMPAIGN,
            "tid": 0,
            "args": {"name": "campaign (wall clock)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_PIPELINE,
            "tid": 0,
            "args": {"name": "pipeline (logical clock)"},
        },
    ]
    for (pid, label), thread in sorted(
        threads.items(), key=lambda item: item[1]
    ):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": thread,
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------


def render_trace_summary(profile: TraceProfile) -> str:
    """The ``repro trace summarize`` report."""
    lines: list[str] = ["# Trace profile", ""]
    lines.append(
        f"pipeline spans: {profile.pipeline_span_count}   "
        f"lifecycle spans: {profile.profile_span_count}"
    )
    if profile.pipeline_stage_seconds:
        lines.append("")
        lines.append("## Pipeline stages (logical clock)")
        width = max(len(n) for n in profile.pipeline_stage_seconds)
        for name in sorted(
            profile.pipeline_stage_seconds,
            key=lambda n: -profile.pipeline_stage_seconds[n],
        ):
            lines.append(
                f"  {name:<{width}}  "
                f"{profile.pipeline_stage_seconds[name]:>12.6f} s"
            )
    if not profile.has_profile:
        lines.append("")
        lines.append(
            "no campaign lifecycle spans in this trace (run measure "
            "with --trace-out on an instrumented campaign to record "
            "worker timelines)"
        )
        return "\n".join(lines) + "\n"
    lines.append("")
    lines.append(f"## Campaign ({profile.wall_seconds:.3f} s wall clock)")
    lines.append("")
    lines.append(
        f"  {'worker':<8} {'tasks':>5} {'busy s':>9} {'busy %':>7} "
        f"{'idle %':>7} {'spawn s':>8} {'build s':>8}"
    )
    for label in sorted(profile.workers):
        entry = profile.workers[label]
        lines.append(
            f"  {label:<8} {entry['tasks']:>5} {entry['busy']:>9.3f} "
            f"{entry['busy_frac'] * 100:>6.1f}% "
            f"{entry['idle_frac'] * 100:>6.1f}% "
            f"{entry['spawn']:>8.3f} {entry['world_build']:>8.3f}"
        )
    if profile.phases:
        lines.append("")
        lines.append("## Phase attribution (wall clock, overlap-counted)")
        width = max(len(n) for n in profile.phases)
        for name in sorted(profile.phases, key=lambda n: -profile.phases[n]):
            lines.append(
                f"  {name:<{width}}  {profile.phases[name]:>10.3f} s"
            )
    if profile.critical_phases:
        lines.append("")
        total = sum(profile.critical_phases.values())
        lines.append(
            f"## Critical path ({total:.3f} s — partitions the wall clock)"
        )
        width = max(len(n) for n in profile.critical_phases)
        for name in sorted(
            profile.critical_phases,
            key=lambda n: -profile.critical_phases[n],
        ):
            seconds = profile.critical_phases[name]
            share = seconds / total * 100 if total > 0 else 0.0
            lines.append(
                f"  {name:<{width}}  {seconds:>10.3f} s  {share:>5.1f}%"
            )
    if profile.amdahl is not None:
        lines.append("")
        lines.append("## Amdahl decomposition")
        lines.append(
            f"  serial {profile.amdahl['serial_seconds']:.3f} s / "
            f"parallel {profile.amdahl['parallel_seconds']:.3f} s "
            f"(serial fraction "
            f"{profile.amdahl['serial_fraction'] * 100:.1f}%)"
        )
        bounds = ", ".join(
            f"{n}w <= {bound:.2f}x"
            for n, bound in profile.amdahl["speedup_bounds"].items()
        )
        lines.append(f"  speedup bounds: {bounds}")
    return "\n".join(lines) + "\n"


def render_critical_path(profile: TraceProfile, top: int = 20) -> str:
    """The ``repro trace critical-path`` report: longest segments."""
    if not profile.critical:
        return (
            "no campaign lifecycle spans in this trace; nothing to "
            "walk\n"
        )
    lines = [
        f"# Critical path ({profile.wall_seconds:.3f} s wall clock, "
        f"{len(profile.critical)} segments)",
        "",
    ]
    ranked = sorted(
        profile.critical, key=lambda seg: -seg["seconds"]
    )[:top]
    for segment in ranked:
        attrs = segment["attrs"]
        detail = " ".join(
            f"{key}={attrs[key]}"
            for key in ("worker", "country", "attempt", "reason")
            if key in attrs
        )
        lines.append(
            f"  {segment['start']:>10.3f}s  {segment['seconds']:>9.3f}s  "
            f"{segment['name']:<12} {detail}"
        )
    dropped = len(profile.critical) - len(ranked)
    if dropped > 0:
        lines.append(f"  ... {dropped} shorter segments not shown")
    return "\n".join(lines) + "\n"
