"""Pairwise country comparison (the Section 3.2 extension).

The paper suggests a study "looking at how countries rely on specific
providers may wish to redefine d_ij and compare countries'
distributions pairwise rather than using a reference distribution".
This module implements that: exact EMD between every pair of countries'
layer distributions under the rank-share ground distance, plus
hierarchical clustering of countries by dependence *shape*.

Shapes, not providers: two countries dominated 60/10/5 by entirely
different providers have distance ~0 here.  That is the point — this
view finds countries whose lived concentration experience matches, no
matter who the local hyperscaler is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from ..core.emd import pairwise_emd
from ..errors import InvalidDistributionError, UnknownLayerError
from .study import DependenceStudy

__all__ = [
    "DistanceMatrix",
    "country_distance_matrix",
    "cluster_countries",
]


@dataclass(frozen=True)
class DistanceMatrix:
    """Symmetric pairwise EMD matrix over countries."""

    countries: tuple[str, ...]
    values: np.ndarray

    def distance(self, a: str, b: str) -> float:
        """Pairwise EMD between two countries."""
        i = self.countries.index(a)
        j = self.countries.index(b)
        return float(self.values[i, j])

    def nearest(self, cc: str, top: int = 5) -> list[tuple[str, float]]:
        """The countries whose dependence shape is closest to ``cc``."""
        i = self.countries.index(cc)
        order = np.argsort(self.values[i])
        out = []
        for j in order:
            if int(j) == i:
                continue
            out.append((self.countries[int(j)], float(self.values[i, j])))
            if len(out) == top:
                break
        return out


def country_distance_matrix(
    study: DependenceStudy,
    layer: str = "hosting",
    countries: list[str] | None = None,
    max_rank: int = 40,
) -> DistanceMatrix:
    """Exact pairwise EMD between countries' rank-share curves.

    Distributions are truncated to their top ``max_rank`` providers
    (with the tail folded into a single residual bucket) to keep the
    transportation LPs small; the head carries virtually all of the
    shape.
    """
    if layer not in ("hosting", "dns", "ca", "tld"):
        raise UnknownLayerError(f"unknown layer {layer!r}")
    if max_rank < 2:
        raise InvalidDistributionError("max_rank must be at least 2")
    selected = tuple(countries or study.countries)

    from ..core.distributions import ProviderDistribution

    def truncated(cc: str) -> ProviderDistribution:
        dist = study.layer(layer).distribution(cc)
        head = dist.ranked()[:max_rank]
        items = {name: count for name, count in head}
        tail = dist.total - sum(items.values())
        if tail > 0:
            items["__tail__"] = tail
        return ProviderDistribution(items)

    distributions = {cc: truncated(cc) for cc in selected}
    n = len(selected)
    values = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            result = pairwise_emd(
                distributions[selected[i]], distributions[selected[j]]
            )
            values[i, j] = values[j, i] = result.normalized
    return DistanceMatrix(countries=selected, values=values)


def cluster_countries(
    matrix: DistanceMatrix, n_clusters: int
) -> dict[int, list[str]]:
    """Group countries by dependence shape (average-linkage).

    Returns ``cluster id -> member country codes`` with ids relabeled
    1..k in order of decreasing cluster size.
    """
    if n_clusters < 1 or n_clusters > len(matrix.countries):
        raise InvalidDistributionError(
            f"n_clusters must be in [1, {len(matrix.countries)}], "
            f"got {n_clusters}"
        )
    if len(matrix.countries) == 1:
        return {1: [matrix.countries[0]]}
    condensed = squareform(matrix.values, checks=False)
    tree = linkage(condensed, method="average")
    labels = fcluster(tree, t=n_clusters, criterion="maxclust")
    groups: dict[int, list[str]] = {}
    for cc, label in zip(matrix.countries, labels):
        groups.setdefault(int(label), []).append(cc)
    ordered = sorted(groups.values(), key=lambda g: (-len(g), g[0]))
    return {i + 1: members for i, members in enumerate(ordered)}
