"""Diffing two stored campaigns: what did the world's evolution change?

The longitudinal questions the paper asks (Section 5.4: who gained,
who lost, where did Cloudflare spread) become cheap once campaigns
persist: load two manifests from a
:class:`~repro.store.store.CampaignStore`, rebuild each dataset from
its shards, and compare the per-layer centralization scores and
insularity country by country.  The renderer also reports *shard
provenance* — which countries were actually re-measured between the
two campaigns and which reused identical stored results — which is the
store's own evidence of how much incremental re-measurement saved.
"""

from __future__ import annotations

from ..core.centralization import centralization_score
from ..datasets.paper_scores import LAYERS
from ..errors import PipelineError, StoreCorruptionError
from ..pipeline.records import MeasurementDataset
from ..store.store import CampaignStore, decode_shard
from .layers import LayerAnalysis

__all__ = [
    "campaign_dataset",
    "campaign_diff",
    "dataset_from_manifest",
    "manifest_snapshot",
    "render_campaign_diff",
]


def manifest_snapshot(manifest: dict) -> str | None:
    """The snapshot a stored campaign actually measured.

    An evolved campaign's manifest records the *base* config plus the
    churn recipe; the measured world carries the churn's new snapshot.
    """
    spec = manifest.get("spec", {})
    churn = spec.get("churn")
    if isinstance(churn, list):
        # A churn chain: the measured world carries the last step's
        # snapshot.
        churn = churn[-1] if churn else None
    if churn is not None:
        return churn.get("new_snapshot")
    return spec.get("config", {}).get("snapshot")


def dataset_from_manifest(
    store: CampaignStore, manifest: dict
) -> tuple[MeasurementDataset, list[str], list[str]]:
    """Rebuild a dataset from a *preloaded* manifest, tolerating gaps.

    Unlike :func:`campaign_dataset` this never raises on an incomplete
    campaign: countries whose shard is unwritten or whose object is
    missing are skipped and reported, so a partially-measured campaign
    is still servable.  Returns ``(dataset, missing, quarantined)``
    where ``missing`` is the countries excluded from the dataset and
    ``quarantined`` the countries flagged by the supervisor (these still
    contribute rows when their object exists).

    Taking the manifest (not a campaign id) makes the read atomic under
    concurrent writers: the caller loads the manifest once and every
    shard it references is immutable and was written before the
    manifest named it, so the rebuilt dataset is a consistent snapshot.
    """
    dataset = MeasurementDataset()
    missing: list[str] = []
    quarantined: list[str] = []
    for cc in sorted(manifest.get("countries", {})):
        entry = manifest["countries"][cc]
        if entry.get("quarantined"):
            quarantined.append(cc)
        digest = entry.get("object")
        if digest is None:
            missing.append(cc)
            continue
        payload = store.get_object(digest)
        if payload is None:
            missing.append(cc)
            continue
        dataset.extend(decode_shard(payload).rows)
    return dataset, missing, quarantined


def campaign_dataset(
    store: CampaignStore, campaign: str
) -> MeasurementDataset:
    """Rebuild a stored campaign's full dataset from its shards."""
    manifest = store.load_manifest(campaign)
    if manifest is None:
        raise PipelineError(
            f"campaign {campaign} not found in store {store.root}"
        )
    return _complete_dataset(store, campaign, manifest)


def _complete_dataset(
    store: CampaignStore, campaign: str, manifest: dict
) -> MeasurementDataset:
    """Rebuild a dataset from a manifest, raising on any gap."""
    dataset = MeasurementDataset()
    for cc in sorted(manifest.get("countries", {})):
        entry = manifest["countries"][cc]
        digest = entry.get("object")
        if digest is None:
            raise PipelineError(
                f"campaign {campaign} has no stored shard for {cc} "
                f"(incomplete run; finish it with --resume)"
            )
        payload = store.get_object(digest)
        if payload is None:
            raise StoreCorruptionError(
                f"campaign {campaign}: manifest references missing "
                f"object {digest} for {cc}; run `repro campaigns fsck "
                f"--repair` and re-measure with --resume"
            )
        dataset.extend(decode_shard(payload).rows)
    return dataset


def campaign_diff(
    store: CampaignStore,
    campaign_a: str,
    campaign_b: str,
    *,
    manifest_a: dict | None = None,
    manifest_b: dict | None = None,
) -> dict:
    """Structured per-layer, per-country deltas between two campaigns.

    Returns a JSON-ready mapping with shard provenance (which
    countries' stored results are literally the same object) and, for
    every layer, each country's centralization score and insularity in
    both campaigns plus the delta.

    Callers that already hold the two manifests (the serve read path,
    which must diff the exact snapshots it keyed its cache on) pass
    them via ``manifest_a``/``manifest_b``; otherwise they are loaded
    here.
    """
    if manifest_a is None:
        manifest_a = store.load_manifest(campaign_a)
    if manifest_b is None:
        manifest_b = store.load_manifest(campaign_b)
    if manifest_a is None or manifest_b is None:
        missing = campaign_a if manifest_a is None else campaign_b
        raise PipelineError(
            f"campaign {missing} not found in store {store.root}"
        )
    dataset_a = _complete_dataset(store, campaign_a, manifest_a)
    dataset_b = _complete_dataset(store, campaign_b, manifest_b)

    countries_a = manifest_a.get("countries", {})
    countries_b = manifest_b.get("countries", {})
    shared = sorted(set(countries_a) & set(countries_b))
    reused = [
        cc
        for cc in shared
        if countries_a[cc].get("object") == countries_b[cc].get("object")
    ]
    remeasured = [cc for cc in shared if cc not in set(reused)]

    layers: dict = {}
    for layer in LAYERS:
        analysis_a = LayerAnalysis(dataset_a, layer)
        analysis_b = LayerAnalysis(dataset_b, layer)
        per_country: dict = {}
        for cc in shared:
            score_a = centralization_score(analysis_a.distribution(cc))
            score_b = centralization_score(analysis_b.distribution(cc))
            insularity_a = analysis_a.insularity[cc]
            insularity_b = analysis_b.insularity[cc]
            per_country[cc] = {
                "centralization": [score_a, score_b, score_b - score_a],
                "insularity": [
                    insularity_a,
                    insularity_b,
                    insularity_b - insularity_a,
                ],
            }
        layers[layer] = per_country

    return {
        "campaign_a": campaign_a,
        "campaign_b": campaign_b,
        "snapshot_a": manifest_snapshot(manifest_a),
        "snapshot_b": manifest_snapshot(manifest_b),
        "countries_only_a": sorted(set(countries_a) - set(countries_b)),
        "countries_only_b": sorted(set(countries_b) - set(countries_a)),
        "reused_shards": reused,
        "remeasured": remeasured,
        "layers": layers,
    }


def render_campaign_diff(
    store: CampaignStore,
    campaign_a: str,
    campaign_b: str,
    top: int = 10,
) -> str:
    """Human-readable diff of two stored campaigns.

    Per layer, the ``top`` countries by absolute centralization delta
    (all countries when fewer); plus shard provenance up front.
    """
    diff = campaign_diff(store, campaign_a, campaign_b)
    out = [
        "campaign diff",
        "=============",
        f"a: {campaign_a[:16]}  snapshot {diff['snapshot_a']}",
        f"b: {campaign_b[:16]}  snapshot {diff['snapshot_b']}",
        "",
        f"-- shards: {len(diff['reused_shards'])} reused, "
        f"{len(diff['remeasured'])} re-measured",
    ]
    if diff["reused_shards"]:
        out.append(f"   reused: {' '.join(diff['reused_shards'])}")
    if diff["remeasured"]:
        out.append(f"   re-measured: {' '.join(diff['remeasured'])}")
    for only, label in (
        (diff["countries_only_a"], "only in a"),
        (diff["countries_only_b"], "only in b"),
    ):
        if only:
            out.append(f"   {label}: {' '.join(only)}")
    for layer, per_country in diff["layers"].items():
        ranked = sorted(
            per_country.items(),
            key=lambda item: (-abs(item[1]["centralization"][2]), item[0]),
        )[:top]
        out.append("")
        out.append(f"-- {layer}: centralization / insularity deltas")
        for cc, entry in ranked:
            score_a, score_b, d_score = entry["centralization"]
            ins_a, ins_b, d_ins = entry["insularity"]
            out.append(
                f"   {cc}  score {score_a:.4f} -> {score_b:.4f} "
                f"({d_score:+.4f})   insularity {ins_a:.3f} -> "
                f"{ins_b:.3f} ({d_ins:+.3f})"
            )
    return "\n".join(out)
