"""Terminal-friendly figure rendering.

Every figure in the paper is regenerated as data by the benchmarks;
this module renders those series as ASCII so the artifacts under
``benchmarks/output`` read like the plots: horizontal bar charts,
stacked bars, line/CDF panels, and shaded matrices.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..errors import InvalidDistributionError

__all__ = [
    "bar_chart",
    "stacked_bars",
    "line_panel",
    "matrix_heatmap",
    "histogram",
]

_SHADES = " .:-=+*#%@"


def _check_width(width: int) -> None:
    if width < 10:
        raise InvalidDistributionError(
            f"chart width must be at least 10 columns, got {width}"
        )


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    fmt: str = "{:.4f}",
    sort: bool = True,
    limit: int | None = None,
) -> str:
    """Horizontal bar chart of labeled values."""
    _check_width(width)
    if not values:
        return "(empty)"
    items = list(values.items())
    if sort:
        items.sort(key=lambda kv: (-kv[1], kv[0]))
    if limit is not None:
        items = items[:limit]
    peak = max(v for _, v in items) or 1.0
    label_width = max(len(str(k)) for k, _ in items)
    lines = []
    for label, value in items:
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(
            f"{label:>{label_width}s} | {bar:<{width}s} {fmt.format(value)}"
        )
    return "\n".join(lines)


def stacked_bars(
    rows: Mapping[str, Mapping[str, float]],
    segments: Sequence[str],
    *,
    width: int = 60,
    symbols: str = "#@=+:*o.x-",
) -> str:
    """Stacked 100%-bars, one row per key (the Figure 7 shape).

    Each row's segment shares should sum to ~1; the legend maps the
    symbol alphabet to segment names.
    """
    _check_width(width)
    if len(segments) > len(symbols):
        raise InvalidDistributionError(
            f"too many segments ({len(segments)}) for the symbol set"
        )
    label_width = max((len(str(k)) for k in rows), default=1)
    lines = [
        "legend: "
        + "  ".join(
            f"{symbols[i]}={segment}" for i, segment in enumerate(segments)
        )
    ]
    for label, shares in rows.items():
        cells: list[str] = []
        for i, segment in enumerate(segments):
            n = int(round(width * shares.get(segment, 0.0)))
            cells.append(symbols[i] * n)
        bar = "".join(cells)[:width]
        lines.append(f"{label:>{label_width}s} |{bar:<{width}s}|")
    return "\n".join(lines)


def line_panel(
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 12,
) -> str:
    """Multi-series line panel (sorted-curve / CDF figures).

    Each series is resampled to ``width`` columns; series are drawn
    with distinct glyphs, higher values toward the top.
    """
    _check_width(width)
    if height < 4:
        raise InvalidDistributionError("panel height must be >= 4")
    if not series:
        return "(empty)"
    glyphs = "*o+x#@%&"
    peak = max(
        (max(values) for values in series.values() if len(values)),
        default=1.0,
    )
    peak = peak or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for s_index, (name, values) in enumerate(sorted(series.items())):
        if not values:
            continue
        glyph = glyphs[s_index % len(glyphs)]
        legend.append(f"{glyph}={name}")
        n = len(values)
        for col in range(width):
            value = values[min(int(col * n / width), n - 1)]
            row = height - 1 - min(
                int(value / peak * (height - 1)), height - 1
            )
            grid[row][col] = glyph
    lines = [f"peak={peak:.4f}   " + "  ".join(legend)]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def matrix_heatmap(
    rows: Sequence[str],
    columns: Sequence[str],
    value: "callable",
    *,
    fmt: str = "{:4.2f}",
) -> str:
    """Shaded matrix (the Figure 8 dependence matrices)."""
    header = "      " + " ".join(f"{c:>7s}" for c in columns)
    lines = [header]
    for row in rows:
        cells = []
        for col in columns:
            v = value(row, col)
            shade = _SHADES[
                min(int(v * (len(_SHADES) - 1)), len(_SHADES) - 1)
            ]
            cells.append(f"{shade}{fmt.format(v):>6s}")
        lines.append(f"{row:>5s} " + " ".join(cells))
    return "\n".join(lines)


def histogram(
    edges: Sequence[float],
    counts: Sequence[int],
    *,
    width: int = 40,
    marker: float | None = None,
    marker_label: str = "global",
) -> str:
    """Vertical-binned histogram drawn horizontally (Figure 12)."""
    _check_width(width)
    if len(edges) != len(counts):
        raise InvalidDistributionError("edges and counts must align")
    peak = max(counts) or 1
    lines = []
    marker_drawn = False
    for edge, count in zip(edges, counts):
        bar = "#" * int(round(width * count / peak))
        tag = ""
        if (
            marker is not None
            and not marker_drawn
            and marker < edge + (edges[1] - edges[0] if len(edges) > 1 else 1)
            and marker >= edge
        ):
            tag = f"  <-- {marker_label} ({marker:.4f})"
            marker_drawn = True
        lines.append(f"{edge:5.3f} | {bar:<{width}s} {count:3d}{tag}")
    return "\n".join(lines)
