"""Longitudinal comparison of two measurement snapshots (Section 5.4)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..core.correlation import CorrelationResult, jaccard_index, pearson
from ..datasets.providers import CLOUDFLARE
from .study import DependenceStudy

__all__ = ["SnapshotComparison"]


@dataclass(frozen=True)
class SnapshotComparison:
    """All Section 5.4 statistics between two study snapshots."""

    old: DependenceStudy
    new: DependenceStudy

    @cached_property
    def countries(self) -> list[str]:
        """Country codes covered, sorted."""
        old_set = set(self.old.countries)
        return [cc for cc in self.new.countries if cc in old_set]

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------

    @cached_property
    def score_correlation(self) -> CorrelationResult:
        """Correlation of hosting S across snapshots (paper: 0.98)."""
        old_scores = self.old.hosting.scores
        new_scores = self.new.hosting.scores
        return pearson(
            [old_scores[cc] for cc in self.countries],
            [new_scores[cc] for cc in self.countries],
        )

    def score_change(self, cc: str) -> tuple[float, float]:
        """(old S, new S) for one country."""
        return self.old.hosting.scores[cc], self.new.hosting.scores[cc]

    @cached_property
    def largest_increase(self) -> tuple[str, float]:
        """Country with the largest score increase and its delta."""
        deltas = {
            cc: self.new.hosting.scores[cc] - self.old.hosting.scores[cc]
            for cc in self.countries
        }
        cc = max(deltas, key=lambda c: (deltas[c], c))
        return cc, deltas[cc]

    @cached_property
    def largest_decrease(self) -> tuple[str, float]:
        """Country with the largest score decrease and its delta."""
        deltas = {
            cc: self.new.hosting.scores[cc] - self.old.hosting.scores[cc]
            for cc in self.countries
        }
        cc = min(deltas, key=lambda c: (deltas[c], c))
        return cc, deltas[cc]

    # ------------------------------------------------------------------
    # Cloudflare adoption
    # ------------------------------------------------------------------

    def cloudflare_share(self, study: DependenceStudy, cc: str) -> float:
        """Cloudflare's hosting share in one snapshot."""
        return study.hosting.distribution(cc).share_of(CLOUDFLARE)

    def cloudflare_delta_points(self, cc: str) -> float:
        """Change in Cloudflare share, in percentage points."""
        return 100.0 * (
            self.cloudflare_share(self.new, cc)
            - self.cloudflare_share(self.old, cc)
        )

    @cached_property
    def mean_cloudflare_delta_points(self) -> float:
        """Average Cloudflare share change, in points."""
        deltas = [self.cloudflare_delta_points(cc) for cc in self.countries]
        return sum(deltas) / len(deltas)

    @cached_property
    def cloudflare_decreasing(self) -> list[str]:
        """Countries whose Cloudflare usage materially dropped (paper:
        RU, BY, UZ, MM — the only four).

        "Materially" means by more than 0.4 share points: toplist churn
        alone moves shares by a site or two, which should not read as a
        provider losing ground.
        """
        return [
            cc
            for cc in self.countries
            if self.cloudflare_delta_points(cc) < -0.4
        ]

    # ------------------------------------------------------------------
    # Toplist churn and U.S. reliance
    # ------------------------------------------------------------------

    def toplist_jaccard(self, cc: str) -> float:
        """Jaccard similarity of a country's two toplists."""
        return jaccard_index(
            self.old.world.toplists[cc].domains,
            self.new.world.toplists[cc].domains,
        )

    @cached_property
    def mean_jaccard(self) -> float:
        """Mean toplist Jaccard across countries."""
        values = [self.toplist_jaccard(cc) for cc in self.countries]
        return sum(values) / len(values)

    def us_reliance(self, study: DependenceStudy, cc: str) -> float:
        """Share of a country's sites on U.S.-based providers."""
        return study.hosting.dependence_on(cc, "US")

    @cached_property
    def countries_less_us_reliant(self) -> list[str]:
        """Countries whose share of U.S.-based hosting decreased."""
        return [
            cc
            for cc in self.countries
            if self.us_reliance(self.new, cc)
            < self.us_reliance(self.old, cc)
        ]
