"""Analysis: the paper's Sections 5–7 computations over measured data.

:class:`DependenceStudy` orchestrates world → pipeline → per-layer
analyses; :mod:`~repro.analysis.layers` computes scores, insularity,
and provider classes per layer; :mod:`~repro.analysis.regional`
aggregates by subregion/continent and builds the Figure 8 dependence
matrices; :mod:`~repro.analysis.longitudinal` compares snapshots.
"""

from .campaign import load_metrics, render_campaign_report
from .traceprof import (
    TraceProfile,
    amdahl_decomposition,
    analyze_trace,
    chrome_trace,
    critical_path,
    render_critical_path,
    render_trace_summary,
    worker_timelines,
)
from .crosslayer import (
    BundlingReport,
    ca_attribution,
    hosting_dns_bundling,
    layer_score_coupling,
)
from .layers import CountryBreakdown, LayerAnalysis
from .pairwise import (
    DistanceMatrix,
    cluster_countries,
    country_distance_matrix,
)
from .longitudinal import SnapshotComparison
from .regional import (
    DependenceMatrix,
    anycast_share,
    continent_means,
    ip_geolocation_matrix,
    layer_insularity_cdf,
    ns_geolocation_matrix,
    provider_hq_matrix,
    subregion_means,
)
from .report import comparison_table, country_report, layer_summary
from .series import (
    render_series_detail,
    render_series_list,
    render_series_trend,
    resolve_series_id,
    series_trend,
)
from .storediff import (
    campaign_dataset,
    campaign_diff,
    dataset_from_manifest,
    render_campaign_diff,
)
from .study import DependenceStudy
from .whatif import (
    OutageImpact,
    SchismImpact,
    country_schism,
    provider_outage,
    single_points_of_failure,
)

__all__ = [
    "load_metrics",
    "render_campaign_report",
    "TraceProfile",
    "analyze_trace",
    "critical_path",
    "amdahl_decomposition",
    "worker_timelines",
    "chrome_trace",
    "render_trace_summary",
    "render_critical_path",
    "campaign_dataset",
    "campaign_diff",
    "dataset_from_manifest",
    "render_campaign_diff",
    "render_series_detail",
    "render_series_list",
    "render_series_trend",
    "resolve_series_id",
    "series_trend",
    "BundlingReport",
    "hosting_dns_bundling",
    "ca_attribution",
    "layer_score_coupling",
    "OutageImpact",
    "SchismImpact",
    "provider_outage",
    "country_schism",
    "single_points_of_failure",
    "DistanceMatrix",
    "country_distance_matrix",
    "cluster_countries",
    "DependenceStudy",
    "LayerAnalysis",
    "CountryBreakdown",
    "SnapshotComparison",
    "subregion_means",
    "continent_means",
    "DependenceMatrix",
    "provider_hq_matrix",
    "ip_geolocation_matrix",
    "ns_geolocation_matrix",
    "anycast_share",
    "layer_insularity_cdf",
    "country_report",
    "layer_summary",
    "comparison_table",
]
