"""Rendering longitudinal series: what did `repro watch` record?

A series ledger (:mod:`repro.store.series`) is the watcher's durable
record — one entry per epoch with status, object footprint, and quota
decisions.  This module turns it into the ``repro campaigns series``
views: a one-line-per-series listing and a per-series detail with the
epoch table plus per-layer centralization deltas between consecutive
live epochs (reusing :func:`~repro.analysis.storediff.campaign_diff`
when both epochs' manifests are still in the store — retired epochs
have no manifest to diff).
"""

from __future__ import annotations

from ..core.centralization import centralization_score
from ..datasets.paper_scores import LAYERS
from ..errors import EmptyDistributionError, PipelineError
from ..store.store import CampaignStore
from .layers import LayerAnalysis
from .storediff import campaign_diff, dataset_from_manifest

__all__ = [
    "render_series_detail",
    "render_series_list",
    "render_series_trend",
    "resolve_series_id",
    "series_trend",
]


def resolve_series_id(store: CampaignStore, prefix: str) -> str:
    """Expand a series-id prefix against the store's ledgers."""
    matches = [
        series
        for series in store.list_series_ids()
        if series.startswith(prefix)
    ]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise PipelineError(
            f"no series matching {prefix!r} in {store.root}"
        )
    raise PipelineError(
        f"series prefix {prefix!r} is ambiguous: "
        f"{', '.join(m[:16] for m in matches)}"
    )


def _live_bytes(entries: list[dict], retired: set[int]) -> int:
    """Accounted payload bytes of the live epochs (shared objects once)."""
    union: dict[str, int] = {}
    for entry in entries:
        if entry["epoch"] in retired:
            continue
        union.update({digest: size for digest, size in entry["objects"]})
    return sum(union.values())


def _retired_union(entries: list[dict]) -> set[int]:
    retired: set[int] = set()
    for entry in entries:
        retired.update(entry["retired"])
    return retired


def render_series_list(store: CampaignStore) -> str:
    """One line per stored series: epochs, health, live footprint."""
    series_ids = store.list_series_ids()
    if not series_ids:
        return f"no series stored in {store.root}"
    out = []
    for series in series_ids:
        payload = store.load_series(series)
        if payload is None:
            out.append(f"{series[:16]}  (unreadable ledger)")
            continue
        entries = payload.get("entries", [])
        retired = _retired_union(entries)
        degraded = sum(
            1 for entry in entries if entry["status"] != "ok"
        )
        unmet = sum(
            1 for entry in entries if not entry["quota_met"]
        )
        line = (
            f"{series[:16]}  {len(entries)} epochs  "
            f"{len(retired)} retired  "
            f"live {_live_bytes(entries, retired)} bytes"
        )
        if degraded:
            line += f"  {degraded} degraded"
        if unmet:
            line += f"  {unmet} quota-unmet"
        out.append(line)
    return "\n".join(out)


def series_trend(
    store: CampaignStore,
    series: str,
    *,
    ledger: dict | None = None,
    manifests: dict[str, dict] | None = None,
) -> dict:
    """Full-series consolidation trend across *all* recorded epochs.

    Where :func:`render_series_detail` diffs consecutive live pairs,
    this walks the entire ledger — retired epochs included — and
    reports, JSON-ready:

    * ``epochs`` — one summary row per recorded epoch (status, state,
      footprint); retired or manifest-less epochs stay in the table
      with ``measurable: false`` so the timeline never has holes.
    * ``layers`` — per-layer centralization/insularity time series:
      for every country ``[[epoch, value], ...]`` over the measurable
      epochs, plus the cross-country mean per epoch.
    * ``providers`` — per-layer provider entry/exit events between
      consecutive measurable epochs (who appeared, who vanished).

    ``ledger``/``manifests`` let the serve read path pin the exact
    snapshots it keyed its cache on; the CLI just lets them load here.
    """
    payload = ledger if ledger is not None else store.load_series(series)
    if payload is None:
        raise PipelineError(
            f"series {series} not found in store {store.root}"
        )
    entries = payload.get("entries", [])
    retired = _retired_union(entries)

    epochs: list[dict] = []
    layer_series: dict[str, dict] = {
        layer: {
            "centralization": {},
            "insularity": {},
            "mean_centralization": [],
        }
        for layer in LAYERS
    }
    providers: dict[str, dict] = {
        layer: {"entries": [], "exits": []} for layer in LAYERS
    }
    previous_providers: dict[str, set[str]] | None = None

    for entry in entries:
        epoch = entry["epoch"]
        campaign = entry["campaign"]
        if manifests is not None:
            manifest = manifests.get(campaign)
        elif epoch in retired:
            manifest = None
        else:
            manifest = store.load_manifest(campaign)
        state = (
            "retired"
            if epoch in retired
            else ("live" if manifest is not None else "manifest-gone")
        )
        row = {
            "epoch": epoch,
            "snapshot": entry["snapshot"],
            "campaign": campaign,
            "status": entry["status"],
            "state": state,
            "quota_met": entry["quota_met"],
            "objects": len(entry["objects"]),
            "bytes": sum(size for _, size in entry["objects"]),
            "measurable": manifest is not None,
        }
        epochs.append(row)
        if manifest is None:
            continue
        dataset, missing, _ = dataset_from_manifest(store, manifest)
        row["missing_countries"] = missing
        epoch_providers: dict[str, set[str]] = {}
        for layer in LAYERS:
            analysis = LayerAnalysis(dataset, layer)
            insularity = analysis.insularity
            scores: list[float] = []
            seen: set[str] = set()
            for cc in dataset.countries:
                try:
                    score = centralization_score(
                        dataset.distribution(cc, layer)
                    )
                except EmptyDistributionError:
                    continue
                layer_series[layer]["centralization"].setdefault(
                    cc, []
                ).append([epoch, score])
                layer_series[layer]["insularity"].setdefault(
                    cc, []
                ).append([epoch, insularity[cc]])
                scores.append(score)
                seen.update(
                    name
                    for name, _ in dataset.distribution(
                        cc, layer
                    ).ranked()
                )
            if scores:
                layer_series[layer]["mean_centralization"].append(
                    [epoch, sum(scores) / len(scores)]
                )
            epoch_providers[layer] = seen
        if previous_providers is not None:
            for layer in LAYERS:
                entered = sorted(
                    epoch_providers[layer] - previous_providers[layer]
                )
                exited = sorted(
                    previous_providers[layer] - epoch_providers[layer]
                )
                if entered:
                    providers[layer]["entries"].append([epoch, entered])
                if exited:
                    providers[layer]["exits"].append([epoch, exited])
        previous_providers = epoch_providers

    return {
        "series": series,
        "epochs": epochs,
        "measurable_epochs": sum(1 for row in epochs if row["measurable"]),
        "layers": layer_series,
        "providers": providers,
    }


def render_series_trend(trend: dict, top: int = 5) -> str:
    """Operator-facing trend report for ``campaigns series --trend``."""
    out = [
        f"series {trend['series'][:16]} — consolidation trend",
        "=" * 44,
        f"epochs recorded: {len(trend['epochs'])}   measurable: "
        f"{trend['measurable_epochs']}",
        "",
        "epoch  status               state          quota  bytes",
    ]
    for row in trend["epochs"]:
        out.append(
            f"{row['epoch']:5d}  {row['status']:19s}  "
            f"{row['state']:13s}  "
            f"{'met' if row['quota_met'] else 'UNMET':5s}  "
            f"{row['bytes']}"
        )
    for layer, data in trend["layers"].items():
        means = data["mean_centralization"]
        if not means:
            continue
        out.append("")
        path = " -> ".join(f"{score:.4f}" for _, score in means)
        out.append(f"-- {layer}: mean centralization {path}")
        movers = sorted(
            (
                (cc, points[-1][1] - points[0][1])
                for cc, points in data["centralization"].items()
                if len(points) > 1
            ),
            key=lambda kv: (-abs(kv[1]), kv[0]),
        )[:top]
        moved = [f"{cc} {delta:+.4f}" for cc, delta in movers if delta]
        if moved:
            out.append(f"   top movers: {' '.join(moved)}")
        events = trend["providers"][layer]
        for epoch, names in events["entries"]:
            out.append(
                f"   epoch {epoch}: entered {', '.join(names)}"
            )
        for epoch, names in events["exits"]:
            out.append(f"   epoch {epoch}: exited {', '.join(names)}")
    if trend["measurable_epochs"] < 2:
        out.append("")
        out.append(
            "-- fewer than two measurable epochs: retired/archived "
            "epochs appear as summary rows only"
        )
    return "\n".join(out)


def render_series_detail(
    store: CampaignStore, series: str, top: int = 5
) -> str:
    """One series in detail: epoch table, then epoch-over-epoch deltas.

    The delta section diffs each consecutive pair of live epochs whose
    manifests both survive in the store, showing the ``top`` countries
    per layer by absolute centralization delta.
    """
    payload = store.load_series(series)
    if payload is None:
        raise PipelineError(
            f"series {series} not found in store {store.root}"
        )
    entries = payload.get("entries", [])
    retired = _retired_union(entries)
    out = [
        f"series {series[:16]}",
        "=" * (7 + 16),
        f"epochs recorded: {len(entries)}   retired: "
        f"{len(retired)}   live payload: "
        f"{_live_bytes(entries, retired)} bytes",
        "",
        "epoch  status               snapshot          campaign"
        "          objects      bytes  quota  state",
    ]
    for entry in entries:
        epoch = entry["epoch"]
        size = sum(size for _, size in entry["objects"])
        out.append(
            f"{epoch:5d}  {entry['status']:19s}  "
            f"{entry['snapshot']:16s}  {entry['campaign'][:16]}  "
            f"{len(entry['objects']):7d}  {size:9d}  "
            f"{'met' if entry['quota_met'] else 'UNMET':5s}  "
            f"{'retired' if epoch in retired else 'live'}"
        )
        if entry["retired"]:
            out.append(
                f"       retires epochs "
                f"{', '.join(str(e) for e in entry['retired'])}"
            )
    pairs = [
        (entries[i - 1], entries[i])
        for i in range(1, len(entries))
        if entries[i - 1]["epoch"] not in retired
        and entries[i]["epoch"] not in retired
        and store.load_manifest(entries[i - 1]["campaign"]) is not None
        and store.load_manifest(entries[i]["campaign"]) is not None
    ]
    for earlier, later in pairs:
        diff = campaign_diff(
            store, earlier["campaign"], later["campaign"]
        )
        out.append("")
        out.append(
            f"-- epoch {earlier['epoch']} -> {later['epoch']} "
            f"({earlier['snapshot']} -> {later['snapshot']}): "
            f"{len(diff['reused_shards'])} shards reused, "
            f"{len(diff['remeasured'])} re-measured"
        )
        for layer, per_country in diff["layers"].items():
            ranked = sorted(
                per_country.items(),
                key=lambda item: (
                    -abs(item[1]["centralization"][2]),
                    item[0],
                ),
            )[:top]
            moved = [
                f"{cc} {entry['centralization'][2]:+.4f}"
                for cc, entry in ranked
                if entry["centralization"][2]
            ]
            out.append(
                f"   {layer:8s} "
                + (" ".join(moved) if moved else "(no score movement)")
            )
    if not pairs and len(entries) > 1:
        out.append("")
        out.append(
            "-- no consecutive live epoch pair with surviving "
            "manifests to diff (quota GC retired them)"
        )
    return "\n".join(out)
