"""Rendering longitudinal series: what did `repro watch` record?

A series ledger (:mod:`repro.store.series`) is the watcher's durable
record — one entry per epoch with status, object footprint, and quota
decisions.  This module turns it into the ``repro campaigns series``
views: a one-line-per-series listing and a per-series detail with the
epoch table plus per-layer centralization deltas between consecutive
live epochs (reusing :func:`~repro.analysis.storediff.campaign_diff`
when both epochs' manifests are still in the store — retired epochs
have no manifest to diff).
"""

from __future__ import annotations

from ..errors import PipelineError
from ..store.store import CampaignStore
from .storediff import campaign_diff

__all__ = [
    "render_series_detail",
    "render_series_list",
    "resolve_series_id",
]


def resolve_series_id(store: CampaignStore, prefix: str) -> str:
    """Expand a series-id prefix against the store's ledgers."""
    matches = [
        series
        for series in store.list_series_ids()
        if series.startswith(prefix)
    ]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise PipelineError(
            f"no series matching {prefix!r} in {store.root}"
        )
    raise PipelineError(
        f"series prefix {prefix!r} is ambiguous: "
        f"{', '.join(m[:16] for m in matches)}"
    )


def _live_bytes(entries: list[dict], retired: set[int]) -> int:
    """Accounted payload bytes of the live epochs (shared objects once)."""
    union: dict[str, int] = {}
    for entry in entries:
        if entry["epoch"] in retired:
            continue
        union.update({digest: size for digest, size in entry["objects"]})
    return sum(union.values())


def _retired_union(entries: list[dict]) -> set[int]:
    retired: set[int] = set()
    for entry in entries:
        retired.update(entry["retired"])
    return retired


def render_series_list(store: CampaignStore) -> str:
    """One line per stored series: epochs, health, live footprint."""
    series_ids = store.list_series_ids()
    if not series_ids:
        return f"no series stored in {store.root}"
    out = []
    for series in series_ids:
        payload = store.load_series(series)
        if payload is None:
            out.append(f"{series[:16]}  (unreadable ledger)")
            continue
        entries = payload.get("entries", [])
        retired = _retired_union(entries)
        degraded = sum(
            1 for entry in entries if entry["status"] != "ok"
        )
        unmet = sum(
            1 for entry in entries if not entry["quota_met"]
        )
        line = (
            f"{series[:16]}  {len(entries)} epochs  "
            f"{len(retired)} retired  "
            f"live {_live_bytes(entries, retired)} bytes"
        )
        if degraded:
            line += f"  {degraded} degraded"
        if unmet:
            line += f"  {unmet} quota-unmet"
        out.append(line)
    return "\n".join(out)


def render_series_detail(
    store: CampaignStore, series: str, top: int = 5
) -> str:
    """One series in detail: epoch table, then epoch-over-epoch deltas.

    The delta section diffs each consecutive pair of live epochs whose
    manifests both survive in the store, showing the ``top`` countries
    per layer by absolute centralization delta.
    """
    payload = store.load_series(series)
    if payload is None:
        raise PipelineError(
            f"series {series} not found in store {store.root}"
        )
    entries = payload.get("entries", [])
    retired = _retired_union(entries)
    out = [
        f"series {series[:16]}",
        "=" * (7 + 16),
        f"epochs recorded: {len(entries)}   retired: "
        f"{len(retired)}   live payload: "
        f"{_live_bytes(entries, retired)} bytes",
        "",
        "epoch  status               snapshot          campaign"
        "          objects      bytes  quota  state",
    ]
    for entry in entries:
        epoch = entry["epoch"]
        size = sum(size for _, size in entry["objects"])
        out.append(
            f"{epoch:5d}  {entry['status']:19s}  "
            f"{entry['snapshot']:16s}  {entry['campaign'][:16]}  "
            f"{len(entry['objects']):7d}  {size:9d}  "
            f"{'met' if entry['quota_met'] else 'UNMET':5s}  "
            f"{'retired' if epoch in retired else 'live'}"
        )
        if entry["retired"]:
            out.append(
                f"       retires epochs "
                f"{', '.join(str(e) for e in entry['retired'])}"
            )
    pairs = [
        (entries[i - 1], entries[i])
        for i in range(1, len(entries))
        if entries[i - 1]["epoch"] not in retired
        and entries[i]["epoch"] not in retired
        and store.load_manifest(entries[i - 1]["campaign"]) is not None
        and store.load_manifest(entries[i]["campaign"]) is not None
    ]
    for earlier, later in pairs:
        diff = campaign_diff(
            store, earlier["campaign"], later["campaign"]
        )
        out.append("")
        out.append(
            f"-- epoch {earlier['epoch']} -> {later['epoch']} "
            f"({earlier['snapshot']} -> {later['snapshot']}): "
            f"{len(diff['reused_shards'])} shards reused, "
            f"{len(diff['remeasured'])} re-measured"
        )
        for layer, per_country in diff["layers"].items():
            ranked = sorted(
                per_country.items(),
                key=lambda item: (
                    -abs(item[1]["centralization"][2]),
                    item[0],
                ),
            )[:top]
            moved = [
                f"{cc} {entry['centralization'][2]:+.4f}"
                for cc, entry in ranked
                if entry["centralization"][2]
            ]
            out.append(
                f"   {layer:8s} "
                + (" ".join(moved) if moved else "(no score movement)")
            )
    if not pairs and len(entries) > 1:
        out.append("")
        out.append(
            "-- no consecutive live epoch pair with surviving "
            "manifests to diff (quota GC retired them)"
        )
    return "\n".join(out)
