"""Campaign store: content-addressed persistence for measurement runs.

The subsystem behind ``repro measure --store/--resume/--since`` and the
``repro campaigns`` CLI.  :mod:`repro.store.digest` defines the
identity scheme (campaign ids, input-keyed shard keys over world-slice
digests); :mod:`repro.store.store` is the on-disk object store with
manifests and garbage collection.
"""

from .digest import (
    PIPELINE_VERSION,
    campaign_id,
    canonical_json,
    digest_of,
    shard_key,
    spec_fingerprint,
)
from .series import SeriesLedger, series_id
from .store import (
    DERIVED_SCHEMA,
    MANIFEST_SCHEMA,
    SERIES_SCHEMA,
    SHARD_SCHEMA,
    CampaignStore,
    FsckReport,
    GcReport,
    decode_shard,
    encode_shard,
)

__all__ = [
    "PIPELINE_VERSION",
    "DERIVED_SCHEMA",
    "MANIFEST_SCHEMA",
    "SERIES_SCHEMA",
    "SHARD_SCHEMA",
    "CampaignStore",
    "FsckReport",
    "GcReport",
    "SeriesLedger",
    "series_id",
    "campaign_id",
    "canonical_json",
    "decode_shard",
    "digest_of",
    "encode_shard",
    "shard_key",
    "spec_fingerprint",
]
