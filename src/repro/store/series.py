"""Durable, content-addressed series ledgers for longitudinal watches.

A *series* is the unit of longitudinal identity: one base campaign
spec plus one per-epoch churn recipe.  Its id is the sha256 of that
recipe (:func:`series_id`), so two watches over the same world with
the same knobs extend the *same* series no matter when or where they
run — and a watch over a different world can never collide with it.

The ledger (``series/<id>.json``) is the watch's crash-safe record:
one entry per completed epoch, appended atomically (temp file +
``os.replace``), so a kill at any instant leaves either the previous
ledger or the new one — never a torn file.  ``--resume-series`` reads
the ledger to decide where to pick up; a kill *inside* an epoch leaves
no entry, and the epoch re-runs through the campaign store's ordinary
shard-level resume.

Convergence is a design rule, not an accident: **everything in a
ledger entry is a pure function of (series recipe, epoch)** —
campaign ids, snapshots, sorted ``[digest, bytes]`` object lists
(object files are canonical JSON, so their sizes are as deterministic
as their digests), retirement decisions replayed from prior entries.
No wall-clock values, no observed disk totals, no kill placement.
That is what lets the integration suite assert that a series battered
by kills at any phase, resumed to completion, produces a ledger
byte-identical to an uninterrupted run's.

The one documented exception: an epoch tombstoned as
``degraded:deadline`` records whatever partial object set its blown
wall-clock budget allowed, which is inherently timing-dependent.  The
guarantee there is weaker by construction — the series terminates and
later epochs are sound — and the convergence tests only batter runs
without deadlines.

Watch telemetry (``series/<id>.watch.json``) is the deliberately
*non*-deterministic sibling: sessions, signals, GC sweeps, observed
store bytes.  It merges across resumes via
:func:`~repro.obs.metrics.merge_metrics_payloads` and is never part
of the convergence guarantee, exactly like the campaign store's
``.store.json`` artifacts.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from ..errors import PipelineError, StoreCorruptionError
from ..obs.metrics import merge_metrics_payloads, render_metrics_json
from .digest import digest_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import CampaignStore

__all__ = [
    "SeriesLedger",
    "series_id",
    "validate_entry",
]

#: Ledger entry statuses a watch can record.
ENTRY_STATUSES = frozenset(
    {"ok", "degraded:deadline", "degraded:quarantine"}
)

#: Fields every ledger entry must carry, in schema order.
_ENTRY_FIELDS = (
    "epoch",
    "campaign",
    "snapshot",
    "status",
    "baseline",
    "objects",
    "retired",
    "quota_met",
)


def series_id(recipe: dict) -> str:
    """Content address of a series recipe (sha256 of canonical JSON)."""
    return digest_of(recipe)


def validate_entry(entry: dict, epoch: int) -> None:
    """Reject a malformed or out-of-order ledger entry before it lands.

    Appends are the only writes a ledger ever sees, so validating here
    keeps every on-disk ledger loadable by construction.
    """
    missing = [key for key in _ENTRY_FIELDS if key not in entry]
    if missing:
        raise PipelineError(
            f"ledger entry is missing fields {missing}"
        )
    if entry["epoch"] != epoch:
        raise PipelineError(
            f"ledger entry for epoch {entry['epoch']} appended at "
            f"position {epoch}; epochs are contiguous from 0"
        )
    if entry["status"] not in ENTRY_STATUSES:
        raise PipelineError(
            f"unknown ledger entry status {entry['status']!r}; "
            f"expected one of {sorted(ENTRY_STATUSES)}"
        )
    objects = entry["objects"]
    if objects != sorted(objects):
        raise PipelineError(
            "ledger entry object list must be sorted by digest"
        )


class SeriesLedger:
    """One series' append-only epoch record inside a campaign store."""

    def __init__(
        self, store: "CampaignStore", recipe: dict
    ) -> None:
        from .store import SERIES_SCHEMA

        self.store = store
        self.recipe = recipe
        self.series = series_id(recipe)
        self._schema = SERIES_SCHEMA
        self.entries: list[dict] = []
        self._load()

    @property
    def path(self):
        """The ledger's on-disk location."""
        return self.store.series_path(self.series)

    def _load(self) -> None:
        path = self.path
        if not path.exists():
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(
                f"series ledger {self.series[:16]} is corrupt "
                f"(unparseable JSON: {exc}); run `repro campaigns "
                f"fsck`"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("_schema") != self._schema
            or payload.get("series") != self.series
        ):
            raise StoreCorruptionError(
                f"series ledger {self.series[:16]} is corrupt "
                f"(wrong schema or series id); run `repro campaigns "
                f"fsck`"
            )
        entries = payload.get("entries", [])
        for epoch, entry in enumerate(entries):
            if not isinstance(entry, dict) or entry.get("epoch") != epoch:
                raise StoreCorruptionError(
                    f"series ledger {self.series[:16]} is corrupt "
                    f"(non-contiguous epochs at position {epoch})"
                )
        self.entries = entries

    def append(self, entry: dict) -> None:
        """Validate and durably append one epoch entry."""
        validate_entry(entry, len(self.entries))
        self.entries.append(entry)
        self.store.write_series_text(self.series, self.render())

    def render(self) -> str:
        """The ledger's canonical on-disk rendering."""
        return (
            json.dumps(
                {
                    "_schema": self._schema,
                    "series": self.series,
                    "recipe": self.recipe,
                    "entries": self.entries,
                },
                sort_keys=True,
                indent=1,
            )
            + "\n"
        )

    # ------------------------------------------------------------------
    # Derived, deterministic views (the watch planner's inputs)
    # ------------------------------------------------------------------

    def retired_epochs(self) -> set[int]:
        """Epochs some later entry's retirement decision dropped."""
        retired: set[int] = set()
        for entry in self.entries:
            retired.update(entry["retired"])
        return retired

    def live_entries(self) -> list[dict]:
        """Entries whose campaign manifests are still rooted."""
        retired = self.retired_epochs()
        return [
            entry
            for entry in self.entries
            if entry["epoch"] not in retired
        ]

    def latest_ok(self) -> dict | None:
        """The newest live ``ok`` entry — the next epoch's baseline.

        Computed from ledger state alone, so a resumed session picks
        the same baseline the killed session did.
        """
        for entry in reversed(self.live_entries()):
            if entry["status"] == "ok":
                return entry
        return None

    # ------------------------------------------------------------------
    # Watch telemetry artifact (merged across sessions)
    # ------------------------------------------------------------------

    def merge_watch_metrics(self, payload: dict) -> dict:
        """Fold one session's watch telemetry into the series artifact.

        Counters sum across sessions, so after N kills and N+1
        sessions the artifact still reads as one watch's history.
        """
        path = self.store.watch_metrics_path(self.series)
        merged = payload
        if path.exists():
            previous = json.loads(path.read_text(encoding="utf-8"))
            merged = merge_metrics_payloads([previous, payload])
        from .store import _atomic_write_text

        _atomic_write_text(path, render_metrics_json(merged))
        return merged

    def load_watch_metrics(self) -> dict | None:
        """The merged watch telemetry payload (None when absent)."""
        path = self.store.watch_metrics_path(self.series)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))
