"""Digest scheme of the campaign store.

Everything in the store is named by content or by a deterministic key:

* ``campaign_id(spec)`` — identity of a campaign *run request*: the
  full world config (seed included), the fault/vantage/instrumentation
  knobs, the measured country set, and the pipeline version.  Two
  invocations with the same id would produce byte-identical outputs,
  which is what makes ``--resume`` sound.
* ``shard_key(spec, country, slice_digest)`` — identity of one
  country's *result*: the pipeline version, the knobs that shape
  measurement behavior, the country, and the world-slice digest
  (:func:`repro.worldgen.slices.world_slice_digest`) standing in for
  everything the pipeline can observe of the world.  Deliberately
  campaign-independent: a shard measured under one campaign is
  reusable by any other whose key matches — the same mechanism serves
  resume (same campaign) and ``--since`` (evolved world, unchanged
  slice).
* ``digest_of(payload)`` — content address of a stored object.

All digests are sha256 over canonical JSON (sorted keys, compact
separators, UTF-8).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

__all__ = [
    "PIPELINE_VERSION",
    "canonical_json",
    "digest_of",
    "campaign_id",
    "shard_key",
    "spec_fingerprint",
]

#: Bumped whenever measurement semantics change in a way that makes
#: previously stored shards non-reusable (new CSV columns, new fault
#: behavior, resolver changes...).  Part of every campaign id and
#: shard key, so stale shards simply never match.
PIPELINE_VERSION = "repro-pipeline-v1"


def canonical_json(payload: object) -> str:
    """The one true JSON rendering used for hashing."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def digest_of(payload: object) -> str:
    """sha256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def _knobs(spec) -> dict:
    """The campaign knobs that shape a single country's measurements."""
    return {
        "fault_profile": spec.fault_profile,
        "fault_seed": spec.fault_seed,
        "retries": spec.retries,
        "vantage_continent": spec.vantage_continent,
        "vantage_country": spec.vantage_country,
        "instrument": bool(spec.instrument),
    }


def _churn_step(churn) -> dict:
    step = dataclasses.asdict(churn)
    if step.get("churn_countries") is not None:
        step["churn_countries"] = list(step["churn_countries"])
    return step


def _churn(spec) -> dict | list | None:
    """JSON-ready churn recipe (None for a base-world campaign).

    A single recipe keeps the original dict shape (ids of existing
    stores stay valid); a churn *chain* (epoch N of a watch series)
    fingerprints as the list of steps, in application order.
    """
    if spec.churn is None:
        return None
    if isinstance(spec.churn, tuple):
        return [_churn_step(step) for step in spec.churn]
    return _churn_step(spec.churn)


def spec_fingerprint(spec) -> dict:
    """JSON-ready identity of a campaign spec (used in manifests)."""
    config = dataclasses.asdict(spec.config)
    config["countries"] = list(config["countries"])
    return {
        "pipeline": PIPELINE_VERSION,
        "config": config,
        "churn": _churn(spec),
        "knobs": _knobs(spec),
        "countries": list(spec.resolved_countries()),
    }


def campaign_id(spec) -> str:
    """Deterministic identity of a campaign run request."""
    return digest_of(spec_fingerprint(spec))


def shard_key(spec, country: str, slice_digest: str) -> str:
    """Deterministic identity of one country's measurement result."""
    return digest_of(
        {
            "pipeline": PIPELINE_VERSION,
            "knobs": _knobs(spec),
            "country": country,
            "slice": slice_digest,
        }
    )
