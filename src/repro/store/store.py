"""Content-addressed, append-only campaign store.

Layout (under one root directory)::

    objects/<aa>/<digest>.json   content-addressed shard payloads
    index/<shard_key>.json       shard-key -> object digest
    campaigns/<id>.json          campaign manifests
    campaigns/<id>.store.json    store-telemetry artifacts

Objects are immutable: a payload is written once under the sha256 of
its canonical JSON and never modified.  The index maps the
*input-keyed* identity of a shard (:func:`repro.store.digest.shard_key`)
to the content digest of its result, which is what lets a resumed or
incremental run answer "has this exact measurement already been done?"
with a single file stat.  Manifests record which shards a campaign
comprises and whether it ran to completion; they are the GC root set.

All writes go through a temp-file + :func:`os.replace` so a crash
mid-write never leaves a torn object — the resume machinery can trust
anything it finds.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..errors import PipelineError
from ..pipeline.export import rows_from_csv_text, rows_to_csv_text
from ..pipeline.parallel import CountryResult
from .digest import digest_of

__all__ = ["CampaignStore", "SHARD_SCHEMA", "MANIFEST_SCHEMA"]

#: Schema tag of stored shard payloads.
SHARD_SCHEMA = "repro-shard-v1"

#: Schema tag of campaign manifests.
MANIFEST_SCHEMA = "repro-manifest-v1"


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def encode_shard(result: CountryResult) -> dict:
    """A CountryResult as a JSON-ready shard payload."""
    return {
        "_schema": SHARD_SCHEMA,
        "country": result.country,
        "csv": rows_to_csv_text(result.rows),
        "metrics": result.metrics,
        "spans": list(result.spans) if result.spans is not None else None,
        "injected_faults": result.injected_faults,
        "open_circuits": list(result.open_circuits),
    }


def decode_shard(payload: dict) -> CountryResult:
    """Rebuild a CountryResult from a stored shard payload."""
    if payload.get("_schema") != SHARD_SCHEMA:
        raise PipelineError(
            f"unsupported shard schema {payload.get('_schema')!r}"
        )
    spans = payload.get("spans")
    return CountryResult(
        country=payload["country"],
        rows=rows_from_csv_text(payload["csv"]),
        metrics=payload.get("metrics"),
        spans=tuple(spans) if spans is not None else None,
        injected_faults=int(payload.get("injected_faults", 0)),
        open_circuits=tuple(payload.get("open_circuits", ())),
    )


class CampaignStore:
    """Append-only persistence for campaign results.

    Safe for concurrent readers; writes are single-process (the
    campaign runner checkpoints from the parent process only).
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._objects = self._root / "objects"
        self._index = self._root / "index"
        self._campaigns = self._root / "campaigns"
        for directory in (self._objects, self._index, self._campaigns):
            directory.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    # ------------------------------------------------------------------
    # Objects and the shard index
    # ------------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self._objects / digest[:2] / f"{digest}.json"

    def _index_path(self, key: str) -> Path:
        return self._index / f"{key}.json"

    def put_object(self, payload: dict) -> str:
        """Store a payload by content; returns its digest (idempotent)."""
        digest = digest_of(payload)
        path = self._object_path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(
                path, json.dumps(payload, sort_keys=True, indent=1)
            )
        return digest

    def get_object(self, digest: str) -> dict | None:
        """Load a payload by content digest (None when absent)."""
        path = self._object_path(digest)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def put_shard(self, key: str, result: CountryResult) -> str:
        """Store one country's result under its shard key.

        The payload lands in ``objects/`` first and the index entry is
        written (atomically) after, so a crash between the two leaves
        at worst an unreferenced object — never an index entry pointing
        at a missing payload.
        """
        digest = self.put_object(encode_shard(result))
        _atomic_write_text(
            self._index_path(key),
            json.dumps({"object": digest}),
        )
        return digest

    def has_shard(self, key: str) -> bool:
        """True when a result for this shard key is stored."""
        return self._index_path(key).exists()

    def shard_digest(self, key: str) -> str | None:
        """The object digest a shard key resolves to (None when absent)."""
        path = self._index_path(key)
        if not path.exists():
            return None
        entry = json.loads(path.read_text(encoding="utf-8"))
        return entry.get("object")

    def get_shard(self, key: str) -> CountryResult | None:
        """Load one country's stored result (None when absent)."""
        digest = self.shard_digest(key)
        if digest is None:
            return None
        payload = self.get_object(digest)
        if payload is None:
            raise PipelineError(
                f"store index references missing object {digest} "
                f"(key {key}); run `repro campaigns gc`"
            )
        return decode_shard(payload)

    # ------------------------------------------------------------------
    # Manifests
    # ------------------------------------------------------------------

    def _manifest_path(self, campaign: str) -> Path:
        return self._campaigns / f"{campaign}.json"

    def save_manifest(self, manifest: dict) -> None:
        """Write a campaign manifest (overwrites previous state)."""
        if manifest.get("_schema") != MANIFEST_SCHEMA:
            raise PipelineError(
                f"unsupported manifest schema {manifest.get('_schema')!r}"
            )
        campaign = manifest["campaign"]
        _atomic_write_text(
            self._manifest_path(campaign),
            json.dumps(manifest, sort_keys=True, indent=1),
        )

    def load_manifest(self, campaign: str) -> dict | None:
        """Load a campaign manifest (None when absent)."""
        path = self._manifest_path(campaign)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def list_campaigns(self) -> list[dict]:
        """Every stored manifest, sorted by campaign id."""
        manifests = []
        for path in sorted(self._campaigns.glob("*.json")):
            if path.name.endswith(".store.json"):
                continue
            manifests.append(json.loads(path.read_text(encoding="utf-8")))
        return manifests

    # ------------------------------------------------------------------
    # Store telemetry artifacts
    # ------------------------------------------------------------------

    def _store_metrics_path(self, campaign: str) -> Path:
        return self._campaigns / f"{campaign}.store.json"

    def write_store_metrics(self, campaign: str, payload: dict) -> None:
        """Write a campaign's store-telemetry metrics payload.

        Kept out of the campaign's own ``--metrics-out`` export on
        purpose: resumed and uninterrupted runs must emit byte-identical
        measurement metrics, and hit/miss counts differ by design.
        """
        _atomic_write_text(
            self._store_metrics_path(campaign),
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )

    def load_store_metrics(self, campaign: str) -> dict | None:
        """Load a campaign's store-telemetry payload (None when absent)."""
        path = self._store_metrics_path(campaign)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc(self) -> tuple[int, int]:
        """Drop objects and index entries no manifest references.

        Manifests are the root set: an object survives iff some
        manifest's country table points at it (directly or through the
        shard index).  Returns ``(objects_removed, index_removed)``.
        """
        live_objects: set[str] = set()
        live_keys: set[str] = set()
        for manifest in self.list_campaigns():
            for entry in manifest.get("countries", {}).values():
                if entry.get("object"):
                    live_objects.add(entry["object"])
                if entry.get("shard_key"):
                    live_keys.add(entry["shard_key"])
        index_removed = 0
        for path in self._index.glob("*.json"):
            if path.stem not in live_keys:
                path.unlink()
                index_removed += 1
        objects_removed = 0
        for path in self._objects.glob("*/*.json"):
            if path.stem not in live_objects:
                path.unlink()
                objects_removed += 1
        return objects_removed, index_removed
