"""Content-addressed, append-only campaign store.

Layout (under one root directory)::

    objects/<aa>/<digest>.json   content-addressed shard payloads
    index/<shard_key>.json       shard-key -> object digest
    derived/<key>.json           derived-key -> materialized object
    campaigns/<id>.json          campaign manifests
    campaigns/<id>.store.json    store-telemetry artifacts
    series/<id>.json             longitudinal series ledgers
    series/<id>.watch.json       watch-telemetry artifacts

Objects are immutable: a payload is written once under the sha256 of
its canonical JSON and never modified.  The index maps the
*input-keyed* identity of a shard (:func:`repro.store.digest.shard_key`)
to the content digest of its result, which is what lets a resumed or
incremental run answer "has this exact measurement already been done?"
with a single file stat.  Manifests record which shards a campaign
comprises and whether it ran to completion; they are the GC root set.

All writes go through a temp-file + :func:`os.replace` so a crash
mid-write never leaves a torn object — but disks, not just crashes,
corrupt stores: bit flips, truncation by a full filesystem, a crash
*inside* the page cache flush.  Loads therefore verify: every object
read re-hashes its payload against its filename and raises a typed
:class:`~repro.errors.StoreCorruptionError` on any mismatch or parse
failure, and :meth:`CampaignStore.fsck` sweeps the whole store
(``repro campaigns fsck [--repair]``), so a damaged store degrades
into "re-measure exactly these countries" instead of silent reuse of
bad data.  Orphaned ``*.tmp`` files (a crash between tmp-write and
``os.replace``) are swept on store open.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import PipelineError, StoreCorruptionError
from ..pipeline.export import rows_from_csv_text, rows_to_csv_text
from ..pipeline.parallel import CountryResult
from .digest import digest_of

__all__ = [
    "CampaignStore",
    "FsckReport",
    "GcReport",
    "SHARD_SCHEMA",
    "MANIFEST_SCHEMA",
    "SERIES_SCHEMA",
    "DERIVED_SCHEMA",
]

#: Schema tag of stored shard payloads.
SHARD_SCHEMA = "repro-shard-v1"

#: Schema tag of campaign manifests.
MANIFEST_SCHEMA = "repro-manifest-v1"

#: Schema tag of longitudinal series ledgers (:mod:`repro.store.series`).
SERIES_SCHEMA = "repro-series-v1"

#: Schema tag of materialized (derived) summary payloads
#: (:mod:`repro.serve.materialize`).
DERIVED_SCHEMA = "repro-derived-v1"


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def encode_shard(result: CountryResult) -> dict:
    """A CountryResult as a JSON-ready shard payload.

    The ``quarantined`` marker is included only when set, so the
    digests of ordinary shards are unchanged from stores written
    before quarantine existed.
    """
    payload = {
        "_schema": SHARD_SCHEMA,
        "country": result.country,
        "csv": rows_to_csv_text(result.rows),
        "metrics": result.metrics,
        "spans": list(result.spans) if result.spans is not None else None,
        "injected_faults": result.injected_faults,
        "open_circuits": list(result.open_circuits),
    }
    if result.quarantined is not None:
        payload["quarantined"] = result.quarantined
    return payload


def decode_shard(payload: dict) -> CountryResult:
    """Rebuild a CountryResult from a stored shard payload."""
    if not isinstance(payload, dict) or payload.get("_schema") != SHARD_SCHEMA:
        raise StoreCorruptionError(
            f"unsupported shard schema "
            f"{payload.get('_schema') if isinstance(payload, dict) else payload!r}"
        )
    spans = payload.get("spans")
    try:
        return CountryResult(
            country=payload["country"],
            rows=rows_from_csv_text(payload["csv"]),
            metrics=payload.get("metrics"),
            spans=tuple(spans) if spans is not None else None,
            injected_faults=int(payload.get("injected_faults", 0)),
            open_circuits=tuple(payload.get("open_circuits", ())),
            quarantined=payload.get("quarantined"),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise StoreCorruptionError(
            f"malformed shard payload ({exc}); run `repro campaigns "
            f"fsck --repair`"
        ) from exc


class CampaignStore:
    """Append-only persistence for campaign results.

    Safe for concurrent readers; writes are single-process (the
    campaign runner checkpoints from the parent process only).
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._objects = self._root / "objects"
        self._index = self._root / "index"
        self._derived = self._root / "derived"
        self._campaigns = self._root / "campaigns"
        self._series = self._root / "series"
        for directory in (
            self._objects,
            self._index,
            self._derived,
            self._campaigns,
            self._series,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        #: Orphaned temp files swept on open (crash between tmp-write
        #: and ``os.replace`` leaks them; they are never referenced,
        #: so sweeping is always safe — writes are single-process).
        self.tmp_swept = self._sweep_tmp()

    def _sweep_tmp(self) -> int:
        swept = 0
        for directory in (
            self._objects,
            self._index,
            self._derived,
            self._campaigns,
            self._series,
        ):
            for tmp in directory.rglob("*.tmp"):
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - races with nothing
                    continue
                swept += 1
        return swept

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    # ------------------------------------------------------------------
    # Objects and the shard index
    # ------------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self._objects / digest[:2] / f"{digest}.json"

    def _index_path(self, key: str) -> Path:
        return self._index / f"{key}.json"

    def put_object(self, payload: dict) -> str:
        """Store a payload by content; returns its digest (idempotent)."""
        digest = digest_of(payload)
        path = self._object_path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(
                path, json.dumps(payload, sort_keys=True, indent=1)
            )
        return digest

    def get_object(self, digest: str) -> dict | None:
        """Load and verify a payload by content digest (None when absent).

        Every load re-hashes the parsed payload against the digest it
        was stored under: a truncated or bit-flipped object raises
        :class:`~repro.errors.StoreCorruptionError` instead of feeding
        damaged data into a resume.
        """
        path = self._object_path(digest)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(
                f"object {digest} is corrupt (unparseable JSON: {exc}); "
                f"run `repro campaigns fsck --repair`"
            ) from exc
        try:
            actual = digest_of(payload)
        except (UnicodeEncodeError, ValueError, TypeError) as exc:
            # json.loads accepts things canonical JSON cannot re-encode
            # (lone surrogates from a bit-flipped escape): unhashable
            # content is corrupt content.
            raise StoreCorruptionError(
                f"object {digest} is corrupt (unhashable payload: "
                f"{exc}); run `repro campaigns fsck --repair`"
            ) from exc
        if actual != digest:
            raise StoreCorruptionError(
                f"object {digest} fails content verification (payload "
                f"hashes to {actual}); run `repro campaigns fsck --repair`"
            )
        return payload

    def object_size(self, digest: str) -> int | None:
        """On-disk byte size of a stored object (None when absent).

        Object files are canonical JSON written once, so the size is
        as deterministic as the digest — which is what lets the watch
        quota planner account bytes without ever re-reading payloads.
        """
        path = self._object_path(digest)
        try:
            return path.stat().st_size
        except OSError:
            return None

    def objects_bytes(self) -> int:
        """Total on-disk bytes of the ``objects/`` payload tree."""
        return sum(
            path.stat().st_size
            for path in self._objects.glob("*/*.json")
        )

    def put_shard(self, key: str, result: CountryResult) -> str:
        """Store one country's result under its shard key.

        The payload lands in ``objects/`` first and the index entry is
        written (atomically) after, so a crash between the two leaves
        at worst an unreferenced object — never an index entry pointing
        at a missing payload.
        """
        digest = self.put_object(encode_shard(result))
        _atomic_write_text(
            self._index_path(key),
            json.dumps({"object": digest}),
        )
        return digest

    def has_shard(self, key: str) -> bool:
        """True when a result for this shard key is stored."""
        return self._index_path(key).exists()

    def shard_digest(self, key: str) -> str | None:
        """The object digest a shard key resolves to (None when absent)."""
        path = self._index_path(key)
        if not path.exists():
            return None
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(
                f"index entry {key} is corrupt ({exc}); run "
                f"`repro campaigns fsck --repair`"
            ) from exc
        if not isinstance(entry, dict):
            raise StoreCorruptionError(
                f"index entry {key} is corrupt (not an object); run "
                f"`repro campaigns fsck --repair`"
            )
        return entry.get("object")

    def get_shard(self, key: str) -> CountryResult | None:
        """Load one country's stored result (None when absent)."""
        digest = self.shard_digest(key)
        if digest is None:
            return None
        payload = self.get_object(digest)
        if payload is None:
            raise StoreCorruptionError(
                f"store index references missing object {digest} "
                f"(key {key}); run `repro campaigns fsck --repair`"
            )
        return decode_shard(payload)

    # ------------------------------------------------------------------
    # Derived (materialized) objects
    # ------------------------------------------------------------------

    def _derived_path(self, key: str) -> Path:
        return self._derived / f"{key}.json"

    def put_derived(
        self, key: str, payload: dict, manifests: "list[str] | tuple[str, ...]" = ()
    ) -> str:
        """Store a materialized payload under a derived key.

        The payload lands in ``objects/`` (content-addressed, verified
        on load like any object) and the derived entry maps the key to
        it, recording which manifest digests it was computed from so
        :meth:`gc` can drop it the moment any input manifest changes
        or disappears.  Idempotent: rebuilding the same payload under
        the same key rewrites identical bytes.
        """
        digest = self.put_object(payload)
        _atomic_write_text(
            self._derived_path(key),
            json.dumps(
                {"object": digest, "manifests": sorted(manifests)}
            ),
        )
        return digest

    def get_derived(self, key: str) -> dict | None:
        """Load a materialized payload by derived key (None on miss).

        Derived entries are *caches*: unlike shard loads, damage here
        is self-healing — a corrupt entry or object is dropped and
        ``None`` returned, so the caller simply rebuilds.
        """
        path = self._derived_path(key)
        if not path.exists():
            return None
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            digest = entry.get("object") if isinstance(entry, dict) else None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            digest = None
        if digest is None:
            path.unlink(missing_ok=True)
            return None
        try:
            payload = self.get_object(digest)
        except StoreCorruptionError:
            payload = None
        if payload is None:
            path.unlink(missing_ok=True)
            return None
        return payload

    def derived_keys(self) -> list[str]:
        """Every stored derived key, sorted."""
        return sorted(path.stem for path in self._derived.glob("*.json"))

    # ------------------------------------------------------------------
    # Manifests
    # ------------------------------------------------------------------

    def _manifest_path(self, campaign: str) -> Path:
        return self._campaigns / f"{campaign}.json"

    def save_manifest(self, manifest: dict) -> None:
        """Write a campaign manifest (overwrites previous state)."""
        if manifest.get("_schema") != MANIFEST_SCHEMA:
            raise PipelineError(
                f"unsupported manifest schema {manifest.get('_schema')!r}"
            )
        campaign = manifest["campaign"]
        _atomic_write_text(
            self._manifest_path(campaign),
            json.dumps(manifest, sort_keys=True, indent=1),
        )

    def load_manifest(self, campaign: str) -> dict | None:
        """Load a campaign manifest (None when absent)."""
        path = self._manifest_path(campaign)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(
                f"manifest {campaign} is corrupt ({exc})"
            ) from exc

    def delete_manifest(self, campaign: str) -> bool:
        """Drop a campaign manifest (and its store-metrics artifact).

        Returns True when the manifest existed.  Idempotent on
        purpose: the watch retirement path replays after a crash, and
        deleting an already-deleted manifest must be a no-op, not an
        error.  The shard objects themselves are reclaimed by the next
        :meth:`gc` — manifests are the root set, so dropping one is
        how an epoch is retired.
        """
        removed = False
        path = self._manifest_path(campaign)
        if path.exists():
            path.unlink()
            removed = True
        metrics = self._store_metrics_path(campaign)
        if metrics.exists():
            metrics.unlink()
        return removed

    def list_campaign_ids(self) -> list[str]:
        """Ids of every stored manifest, sorted — no manifest loads.

        The listing index: one directory scan, zero JSON parses, so
        resolving an id prefix or paging a listing never pays for
        manifests it does not read.
        """
        return sorted(
            path.stem
            for path in self._campaigns.glob("*.json")
            if not path.name.endswith(".store.json")
        )

    def iter_campaigns(self, on_corrupt=None):
        """Yield ``(campaign_id, manifest)`` pairs, loading lazily.

        Manifests are loaded one at a time as the caller consumes the
        iterator, in sorted-id order.  A manifest that raises
        :class:`~repro.errors.StoreCorruptionError` aborts the whole
        iteration by default; with an ``on_corrupt(campaign, exc)``
        callback it is reported and skipped instead, so one damaged
        manifest no longer takes the listing down with it.
        """
        for campaign in self.list_campaign_ids():
            try:
                manifest = self.load_manifest(campaign)
            except StoreCorruptionError as exc:
                if on_corrupt is None:
                    raise
                on_corrupt(campaign, exc)
                continue
            if manifest is None:  # pragma: no cover - deleted mid-scan
                continue
            yield campaign, manifest

    def list_campaigns(self, on_corrupt=None) -> list[dict]:
        """Every stored manifest, sorted by campaign id.

        ``on_corrupt`` as in :meth:`iter_campaigns`; without it a
        damaged manifest raises.
        """
        return [
            manifest
            for _, manifest in self.iter_campaigns(on_corrupt=on_corrupt)
        ]

    # ------------------------------------------------------------------
    # Store telemetry artifacts
    # ------------------------------------------------------------------

    def _store_metrics_path(self, campaign: str) -> Path:
        return self._campaigns / f"{campaign}.store.json"

    def write_store_metrics(self, campaign: str, payload: dict) -> None:
        """Write a campaign's store-telemetry metrics payload.

        Kept out of the campaign's own ``--metrics-out`` export on
        purpose: resumed and uninterrupted runs must emit byte-identical
        measurement metrics, and hit/miss counts differ by design.
        """
        _atomic_write_text(
            self._store_metrics_path(campaign),
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )

    def load_store_metrics(self, campaign: str) -> dict | None:
        """Load a campaign's store-telemetry payload (None when absent)."""
        path = self._store_metrics_path(campaign)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Series ledgers (longitudinal watch)
    # ------------------------------------------------------------------

    def series_path(self, series: str) -> Path:
        """Where a series ledger lives (``series/<id>.json``)."""
        return self._series / f"{series}.json"

    def watch_metrics_path(self, series: str) -> Path:
        """Where a series' watch-telemetry artifact lives."""
        return self._series / f"{series}.watch.json"

    def write_series_text(self, series: str, text: str) -> None:
        """Atomically persist a rendered series ledger."""
        _atomic_write_text(self.series_path(series), text)

    def load_series(self, series: str) -> dict | None:
        """A series ledger's payload, or None when absent/unreadable.

        A reading convenience for inspection commands;
        :class:`~repro.store.series.SeriesLedger` is the validating
        loader and ``fsck`` the corruption detector.
        """
        path = self.series_path(series)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def list_series_ids(self) -> list[str]:
        """Ids of every stored series ledger, sorted."""
        return sorted(
            path.stem
            for path in self._series.glob("*.json")
            if not path.name.endswith(".watch.json")
        )

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc(self, dry_run: bool = False) -> "GcReport":
        """Drop objects and index entries no manifest references.

        Manifests are the root set: an object survives iff some
        manifest's country table points at it (directly or through the
        shard index).  With ``dry_run=True`` nothing is deleted — the
        report says what a real sweep *would* reclaim, which is also
        what the watch quota planner previews before committing to a
        retirement.  GC is idempotent: sweeping twice removes nothing
        the second time, so a crash mid-sweep heals on the next run.
        """
        live_objects: set[str] = set()
        live_keys: set[str] = set()
        manifest_digests: set[str] = set()
        for manifest in self.list_campaigns():
            manifest_digests.add(digest_of(manifest))
            for entry in manifest.get("countries", {}).values():
                if entry.get("object"):
                    live_objects.add(entry["object"])
                if entry.get("shard_key"):
                    live_keys.add(entry["shard_key"])
        report = GcReport(dry_run=dry_run)
        # Derived entries are live exactly while every manifest they
        # were computed from is still stored, byte-for-byte: a changed
        # or retired input manifest invalidates its materializations
        # for free.  (A derived entry with no recorded inputs — e.g. a
        # series trend whose live epochs are all retired — is kept; it
        # is content-addressed and its key changes when inputs do.)
        for path in sorted(self._derived.glob("*.json")):
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                digest = entry.get("object") if isinstance(entry, dict) else None
                inputs = entry.get("manifests", []) if isinstance(entry, dict) else []
            except (json.JSONDecodeError, UnicodeDecodeError):
                digest = None
                inputs = []
            stale = digest is None or any(
                d not in manifest_digests for d in inputs
            )
            if stale:
                report.derived_removed += 1
                report.index_bytes += path.stat().st_size
                if not dry_run:
                    path.unlink()
            else:
                live_objects.add(digest)
        for path in self._index.glob("*.json"):
            if path.stem not in live_keys:
                report.index_removed += 1
                report.index_bytes += path.stat().st_size
                if not dry_run:
                    path.unlink()
        for path in self._objects.glob("*/*.json"):
            if path.stem not in live_objects:
                report.objects_removed += 1
                report.objects_bytes += path.stat().st_size
                if not dry_run:
                    path.unlink()
        return report

    # ------------------------------------------------------------------
    # Integrity checking
    # ------------------------------------------------------------------

    def fsck(self, repair: bool = False) -> "FsckReport":
        """Verify every stored artifact against its digest.

        Re-parses and re-hashes every object, resolves every index
        entry, and cross-checks every manifest's country table.  With
        ``repair=True`` the damage is *dropped*, never patched: corrupt
        objects and dangling/corrupt index entries are deleted and
        affected manifest entries cleared (and the manifest marked
        incomplete), so a subsequent ``--resume``/``--since`` simply
        re-measures exactly the damaged countries.  Orphan objects
        (referenced by nothing) are reported but left for ``gc``.
        """
        report = FsckReport(repaired=repair, tmp_swept=self.tmp_swept)
        valid_objects: set[str] = set()
        for path in sorted(self._objects.glob("*/*.json")):
            report.objects_scanned += 1
            digest = path.stem
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                rehash = digest_of(payload)
            except (
                json.JSONDecodeError,
                UnicodeDecodeError,
                UnicodeEncodeError,
                ValueError,
                TypeError,
            ):
                payload = None
                rehash = None
            if payload is None or rehash != digest:
                report.corrupt_objects.append(digest)
                if repair:
                    path.unlink()
            else:
                valid_objects.add(digest)

        referenced: set[str] = set()
        for path in sorted(self._index.glob("*.json")):
            key = path.stem
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                digest = entry.get("object") if isinstance(entry, dict) else None
            except (json.JSONDecodeError, UnicodeDecodeError):
                digest = None
            if digest is None:
                report.corrupt_index.append(key)
                if repair:
                    path.unlink()
            elif digest not in valid_objects:
                report.dangling_index.append(key)
                if repair:
                    path.unlink()
            else:
                referenced.add(digest)

        for path in sorted(self._campaigns.glob("*.json")):
            if path.name.endswith(".store.json"):
                continue
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                report.corrupt_manifests.append(path.stem)
                continue
            dirty = False
            for cc, entry in sorted(
                manifest.get("countries", {}).items()
            ):
                digest = entry.get("object")
                if digest is None:
                    continue
                if digest in valid_objects:
                    referenced.add(digest)
                    continue
                report.manifest_entries_cleared.append(
                    (manifest.get("campaign", path.stem), cc)
                )
                if repair:
                    entry["object"] = None
                    entry.pop("quarantined", None)
                    manifest["complete"] = False
                    dirty = True
            if dirty:
                self.save_manifest(manifest)

        for path in sorted(self._series.glob("*.json")):
            if path.name.endswith(".watch.json"):
                continue
            try:
                ledger = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                report.corrupt_series.append(path.stem)
                continue
            if (
                not isinstance(ledger, dict)
                or ledger.get("_schema") != SERIES_SCHEMA
                or ledger.get("series") != path.stem
            ):
                report.corrupt_series.append(path.stem)

        for path in sorted(self._derived.glob("*.json")):
            key = path.stem
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                digest = entry.get("object") if isinstance(entry, dict) else None
            except (json.JSONDecodeError, UnicodeDecodeError):
                digest = None
            if digest is None or digest not in valid_objects:
                # Derived entries are caches: dropping one costs a
                # rebuild, never data, so repair always deletes.
                report.bad_derived.append(key)
                if repair:
                    path.unlink()
            else:
                referenced.add(digest)

        report.orphan_objects.extend(
            sorted(valid_objects - referenced)
        )
        return report


@dataclass
class GcReport:
    """What :meth:`CampaignStore.gc` swept (or would sweep)."""

    dry_run: bool = False
    objects_removed: int = 0
    index_removed: int = 0
    #: Derived entries dropped because an input manifest changed or
    #: the entry no longer parses (their objects are then swept too).
    derived_removed: int = 0
    #: On-disk bytes of the swept object payloads.
    objects_bytes: int = 0
    #: On-disk bytes of the swept index entries.
    index_bytes: int = 0

    @property
    def bytes_freed(self) -> int:
        """Total bytes the sweep reclaimed (or would reclaim)."""
        return self.objects_bytes + self.index_bytes

    def render(self) -> str:
        """Operator-facing summary for ``repro campaigns gc``."""
        verb = "would remove" if self.dry_run else "removed"
        summary = (
            f"{verb} {self.objects_removed} objects "
            f"({self.objects_bytes} bytes), "
            f"{self.index_removed} index entries "
            f"({self.index_bytes} bytes)"
        )
        if self.derived_removed:
            summary += (
                f", {self.derived_removed} stale derived entr"
                f"{'ies' if self.derived_removed != 1 else 'y'}"
            )
        return summary


@dataclass
class FsckReport:
    """What :meth:`CampaignStore.fsck` found (and possibly repaired)."""

    repaired: bool = False
    objects_scanned: int = 0
    #: Digests whose object failed to parse or re-hash.
    corrupt_objects: list[str] = field(default_factory=list)
    #: Valid objects referenced by no index entry and no manifest.
    orphan_objects: list[str] = field(default_factory=list)
    #: Shard keys resolving to a missing or corrupt object.
    dangling_index: list[str] = field(default_factory=list)
    #: Shard keys whose index entry itself does not parse.
    corrupt_index: list[str] = field(default_factory=list)
    #: Manifests that no longer parse (reported, never auto-dropped).
    corrupt_manifests: list[str] = field(default_factory=list)
    #: Series ledgers that fail to parse or carry the wrong schema/id
    #: (reported, never auto-dropped — a ledger is series history).
    corrupt_series: list[str] = field(default_factory=list)
    #: ``(campaign, country)`` manifest entries pointing at bad objects.
    manifest_entries_cleared: list[tuple[str, str]] = field(
        default_factory=list
    )
    #: Derived keys whose entry is unparseable or points at a missing
    #: or corrupt object (safe to drop — derived entries are caches).
    bad_derived: list[str] = field(default_factory=list)
    #: Orphaned temp files swept when the store was opened.
    tmp_swept: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing was damaged (orphans/tmp are not damage)."""
        return not (
            self.corrupt_objects
            or self.dangling_index
            or self.corrupt_index
            or self.corrupt_manifests
            or self.corrupt_series
            or self.manifest_entries_cleared
            or self.bad_derived
        )

    def to_metrics(self) -> dict:
        """The ``fsck_*`` metric families as a registry payload."""
        from ..obs.metrics import MetricsRegistry

        registry = MetricsRegistry()

        def count(name: str, help: str, value: int) -> None:
            registry.counter(f"repro_fsck_{name}_total", help).inc(value)

        count("objects_scanned", "objects examined by fsck",
              self.objects_scanned)
        count("corrupt_objects", "objects failing parse or re-hash",
              len(self.corrupt_objects))
        count("orphan_objects", "valid objects referenced by nothing",
              len(self.orphan_objects))
        count("dangling_index_entries",
              "index entries resolving to missing/corrupt objects",
              len(self.dangling_index))
        count("corrupt_index_entries", "unparseable index entries",
              len(self.corrupt_index))
        count("corrupt_manifests", "unparseable campaign manifests",
              len(self.corrupt_manifests))
        count("corrupt_series", "unparseable or mis-tagged series "
              "ledgers", len(self.corrupt_series))
        count("manifest_entries_cleared",
              "manifest country entries pointing at bad objects",
              len(self.manifest_entries_cleared))
        count("bad_derived_entries",
              "derived entries unparseable or pointing at bad objects",
              len(self.bad_derived))
        count("tmp_swept", "orphaned temp files swept on store open",
              self.tmp_swept)
        count("repairs",
              "artifacts dropped or cleared by --repair",
              (len(self.corrupt_objects) + len(self.dangling_index)
               + len(self.corrupt_index)
               + len(self.manifest_entries_cleared)
               + len(self.bad_derived))
              if self.repaired else 0)
        return registry.to_dict()

    def render(self) -> str:
        """Operator-facing summary for ``repro campaigns fsck``."""
        lines = [
            f"scanned {self.objects_scanned} objects"
            + (f" (swept {self.tmp_swept} orphaned tmp files on open)"
               if self.tmp_swept else "")
        ]
        verb = "dropped" if self.repaired else "found"
        cleared = "cleared" if self.repaired else "found"
        if self.corrupt_objects:
            lines.append(
                f"{verb} {len(self.corrupt_objects)} corrupt object"
                f"{'s' if len(self.corrupt_objects) != 1 else ''}: "
                + ", ".join(d[:16] for d in self.corrupt_objects)
            )
        if self.corrupt_index:
            lines.append(
                f"{verb} {len(self.corrupt_index)} corrupt index "
                f"entr{'ies' if len(self.corrupt_index) != 1 else 'y'}"
            )
        if self.dangling_index:
            lines.append(
                f"{verb} {len(self.dangling_index)} dangling index "
                f"entr{'ies' if len(self.dangling_index) != 1 else 'y'}"
            )
        if self.corrupt_manifests:
            lines.append(
                f"found {len(self.corrupt_manifests)} corrupt "
                f"manifest(s): " + ", ".join(self.corrupt_manifests)
            )
        if self.corrupt_series:
            lines.append(
                f"found {len(self.corrupt_series)} corrupt series "
                f"ledger(s): "
                + ", ".join(s[:16] for s in self.corrupt_series)
            )
        if self.manifest_entries_cleared:
            detail = ", ".join(
                f"{campaign[:16]}/{cc}"
                for campaign, cc in self.manifest_entries_cleared
            )
            lines.append(
                f"{cleared} {len(self.manifest_entries_cleared)} "
                f"manifest entr"
                f"{'ies' if len(self.manifest_entries_cleared) != 1 else 'y'}"
                f" pointing at bad objects: {detail}"
            )
        if self.bad_derived:
            lines.append(
                f"{verb} {len(self.bad_derived)} bad derived entr"
                f"{'ies' if len(self.bad_derived) != 1 else 'y'}"
            )
        if self.orphan_objects:
            lines.append(
                f"found {len(self.orphan_objects)} orphan object"
                f"{'s' if len(self.orphan_objects) != 1 else ''} "
                f"(run `repro campaigns gc` to drop)"
            )
        if self.clean:
            lines.append("store is clean")
        elif self.repaired:
            lines.append(
                "store repaired; `--resume`/`--since` will re-measure "
                "the affected countries"
            )
        else:
            lines.append(
                "store is damaged; re-run with --repair to drop bad "
                "entries"
            )
        return "\n".join(lines)
